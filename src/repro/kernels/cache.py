"""Compilation caches — predicates and sort keys built once, not per stage.

``Predicate`` nodes and :class:`~repro.catalog.schema.Schema` are frozen
(hashable) dataclasses, so one process-wide LRU maps
``(predicate, schema)`` to its compiled row function *and* vectorized mask
function. The staged nodes hold the compiled pair from construction on —
nothing is recompiled per stage — and repeated queries over the same
formula (a serving workload's common case) share one compilation.

Predicates carrying unhashable constants fall back to direct compilation;
the cache is an optimization, never a requirement.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.catalog.schema import Schema
from repro.relational.operators.sort import SortKey, key_for_positions
from repro.relational.predicate import ColumnMask, Predicate
from repro.storage.block import Row


@dataclass(frozen=True)
class CompiledPredicate:
    """Both compilations of one formula against one schema."""

    row_fn: Callable[[Row], bool]
    mask_fn: ColumnMask
    comparison_count: int


def _compile(predicate: Predicate, schema: Schema) -> CompiledPredicate:
    return CompiledPredicate(
        row_fn=predicate.compile(schema),
        mask_fn=predicate.compile_mask(schema),
        comparison_count=predicate.comparison_count(),
    )


_cached_compile = lru_cache(maxsize=512)(_compile)


def compiled_predicate(predicate: Predicate, schema: Schema) -> CompiledPredicate:
    """Compiled (row, mask) pair for ``predicate`` bound to ``schema``."""
    try:
        return _cached_compile(predicate, schema)
    except TypeError:  # unhashable constant inside the formula
        return _compile(predicate, schema)


@lru_cache(maxsize=512)
def cached_sort_key(positions: tuple[int, ...]) -> SortKey:
    """Shared sort-key extractor for attribute ``positions``."""
    return key_for_positions(positions)


@dataclass(frozen=True)
class KernelCacheInfo:
    """Combined counters of both compile LRUs, ``cache_info()``-style.

    Matches the shape of :class:`repro.planner.cache.PlanCacheInfo` and
    :class:`repro.storage.bufferpool.BufferPoolInfo` — one introspection
    surface across all three process-wide caches.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int


def _kernel_cache_info() -> KernelCacheInfo:
    """Summed hit/miss/size counters of the predicate and sort-key LRUs."""
    predicate = _cached_compile.cache_info()
    sort_key = cached_sort_key.cache_info()
    return KernelCacheInfo(
        hits=predicate.hits + sort_key.hits,
        misses=predicate.misses + sort_key.misses,
        maxsize=(predicate.maxsize or 0) + (sort_key.maxsize or 0),
        currsize=predicate.currsize + sort_key.currsize,
    )


def _clear_kernel_cache() -> None:
    """Drop both compile LRUs and reset their counters (tests)."""
    _cached_compile.cache_clear()
    cached_sort_key.cache_clear()


def kernel_cache_info() -> KernelCacheInfo:
    """Deprecated: use ``repro.caches.get("kernels").info()``."""
    warnings.warn(
        "kernel_cache_info() is deprecated; use "
        "repro.caches.get('kernels').info() or repro.caches.info()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _kernel_cache_info()


def clear_kernel_cache() -> None:
    """Deprecated: use ``repro.caches.get("kernels").clear()``."""
    warnings.warn(
        "clear_kernel_cache() is deprecated; use "
        "repro.caches.get('kernels').clear() or repro.caches.clear()",
        DeprecationWarning,
        stacklevel=2,
    )
    _clear_kernel_cache()
