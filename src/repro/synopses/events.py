"""Typed trace events of the synopsis catalog.

Like the serving layer (:mod:`repro.server.events`), the synopsis catalog
reports every decision through the observability stream so a warm-started
run is auditable and replayable: which operators were warm-started (and
from how much recorded evidence), which entries a mutation threw away, and
what the idle-capacity refresh hook rebuilt. All three events are
registered with :func:`~repro.observability.register_event_type`, so JSONL
traces containing them round-trip through
:func:`~repro.observability.trace.event_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.observability.trace import TraceEvent, register_event_type


@register_event_type
@dataclass(frozen=True)
class SynopsisHit(TraceEvent):
    """A catalog entry was used — to warm-start an operator's selectivity
    tracker (``scope="warm_start"``) or to back a zero-sampling degraded
    answer (``scope="degraded_answer"``)."""

    kind: ClassVar[str] = "synopsis_hit"
    scope: str = "warm_start"
    key: str = ""
    relations: str = ""
    prior_points: float = 0.0
    prior_mean: float = 0.0
    runs: int = 0


@register_event_type
@dataclass(frozen=True)
class SynopsisInvalidated(TraceEvent):
    """A relation mutation aged or dropped the catalog entries touching it."""

    kind: ClassVar[str] = "synopsis_invalidated"
    relation: str = ""
    posteriors_aged: int = 0
    posteriors_dropped: int = 0
    answers_dropped: int = 0


@register_event_type
@dataclass(frozen=True)
class SynopsisRefreshed(TraceEvent):
    """The budget-charged refresh hook re-derived one invalidated entry."""

    kind: ClassVar[str] = "synopsis_refreshed"
    key: str = ""
    aggregate: str = "count"
    quota: float = 0.0
    blocks: int = 0
    clock: float = 0.0
