"""repro.synopses — cross-query synopsis catalog.

Queries over the same relations get cheaper the more the process runs:
completed sessions deposit per-subtree selectivity posteriors, per-relation
block-sample summaries, and whole-query answer synopses into a
:class:`SynopsisCatalog`; later sessions warm-start Revise-Selectivities
from the posteriors (fewer, bigger stages per quota) and the serving layer
backs degraded answers with recorded estimates instead of flat prestored
statistics. Relation mutations invalidate/age the affected entries.

Opt-in via ``REPRO_SYNOPSES=1`` or ``QueryOptions(synopses=True)``; off,
the engine is bit-identical to one without this package.
"""

from repro.synopses.binder import SynopsisBinder
from repro.synopses.catalog import (
    AnswerSynopsis,
    RelationSummary,
    SelectivityPosterior,
    SynopsisCatalog,
    SynopsisCatalogInfo,
    aggregate_key,
    relation_fingerprint,
)
from repro.synopses.events import (
    SynopsisHit,
    SynopsisInvalidated,
    SynopsisRefreshed,
)

__all__ = [
    "AnswerSynopsis",
    "RelationSummary",
    "SelectivityPosterior",
    "SynopsisBinder",
    "SynopsisCatalog",
    "SynopsisCatalogInfo",
    "SynopsisHit",
    "SynopsisInvalidated",
    "SynopsisRefreshed",
    "aggregate_key",
    "relation_fingerprint",
]
