"""The cross-query synopsis catalog.

The paper observes that prestored selectivities are "free at run time" but
suit only fixed query mixes; the run-time approach needs no statistics but
starts every query from the maximum-selectivity assumption. A server that
executes the same query shapes over and over (the serving layer's whole
premise) can have both: *remember what sampling already measured*. The
:class:`SynopsisCatalog` retains, per process:

* **selectivity posteriors** — pooled ``(output tuples, sampled points)``
  evidence per operator subtree, keyed by the planner's structural hash and
  a size fingerprint of the subtree's base relations. A later query whose
  plan contains the same subtree warm-starts Revise-Selectivities
  (Figure 3.3) from this evidence instead of the assumed maximum, so
  ``sel⁺ = sel^{i−1} + d_β·sqrt(Var)`` starts near the truth and the
  Figure 3.4 bisection buys more useful blocks per quota;
* **answer synopses** — each completed run's final estimate (value,
  variance, sample/population points), keyed by the whole query's
  structural hash and aggregate. The serving layer's degraded answers are
  backed by these: the confidence interval comes from *recorded sample
  variance*, not a flat made-up half-width;
* **relation summaries** — cumulative blocks/tuples sampled per relation,
  cheap observability of how much evidence backs the catalog.

Consistency: every key embeds a base-relation size fingerprint, and
:meth:`SynopsisCatalog.invalidate_relation` (called by
:meth:`Database.append_rows` / :meth:`Database.drop_relation`, i.e. by
committed :mod:`repro.realtime` write transactions) *drops* answer synopses
and *ages* selectivity posteriors touching the mutated relation — aged
evidence decays geometrically and is dropped below a floor. Dropped answers
join a refresh queue that :meth:`repro.server.QueryServer.refresh_synopses`
re-derives in idle capacity, charged to an explicit time budget.

Determinism: the catalog holds no randomness and never touches a clock.
With the switch off nothing is read or written — runs are bit-identical to
an engine without this module. With it on, a run is a deterministic
function of (seed, catalog state), so snapshotting the state and replaying
the seed replays the run bit for bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import ReproError
from repro.estimation.aggregates import AggregateSpec
from repro.estimation.estimate import Estimate
from repro.observability.trace import NULL_SINK, TraceSink
from repro.synopses.events import SynopsisInvalidated

if TYPE_CHECKING:
    from repro.catalog.catalog import Catalog
    from repro.relational.expression import Expression

DEFAULT_DECAY = 0.5
"""Geometric factor applied to a posterior's evidence per invalidation."""

MIN_PRIOR_POINTS = 1.0
"""Posteriors aged below this many points are dropped, not kept."""

MAX_PRIOR_POINTS = 250_000.0
"""Pooled evidence is capped here so one hot query shape cannot accumulate
an unbounded prior that would drown a whole fresh run's observations."""


def aggregate_key(aggregate: AggregateSpec) -> str:
    """Stable string identity of an aggregate: ``count`` / ``sum:qty`` …"""
    if aggregate.attribute is None:
        return aggregate.kind
    return f"{aggregate.kind}:{aggregate.attribute}"


def relation_fingerprint(catalog: "Catalog", names: Iterable[str]) -> str:
    """Size fingerprint of base relations (same scheme as the plan cache).

    Two catalog states agree on a fingerprint only when every named
    relation has the same tuple and block count — evidence recorded against
    one data size is never replayed against another.
    """
    parts = []
    for name in sorted(set(names)):
        relation = catalog.get(name)
        parts.append(f"{name}:{relation.tuple_count}:{relation.block_count}")
    return ";".join(parts)


SynopsisKey = tuple[str, str]
"""(structural hash, base-relation size fingerprint)."""

AnswerKey = tuple[str, str, str]
"""(structural hash, aggregate key, base-relation size fingerprint)."""


@dataclass(frozen=True)
class SelectivityPosterior:
    """Pooled stage evidence for one operator subtree.

    ``tuples`` / ``points`` are cumulative Revise-Selectivities counts
    (floats: aging scales them); ``runs`` counts the absorbed sessions.
    """

    tuples: float
    points: float
    runs: int = 1

    @property
    def mean(self) -> float:
        """Posterior selectivity, clamped to the tracker's (0, 1] domain."""
        if self.points <= 0:
            return 1.0
        return min(max(self.tuples / self.points, 1e-12), 1.0)

    def absorbed(self, tuples: int, points: int) -> "SelectivityPosterior":
        """This posterior plus one more run's observed counts (capped)."""
        new_tuples = self.tuples + tuples
        new_points = self.points + points
        if new_points > MAX_PRIOR_POINTS:
            scale = MAX_PRIOR_POINTS / new_points
            new_tuples *= scale
            new_points = MAX_PRIOR_POINTS
        return SelectivityPosterior(new_tuples, new_points, self.runs + 1)

    def aged(self, decay: float) -> "SelectivityPosterior":
        """Evidence decayed by one mutation epoch."""
        return replace(self, tuples=self.tuples * decay, points=self.points * decay)


@dataclass(frozen=True)
class AnswerSynopsis:
    """One completed run's final answer, kept for degraded serving.

    ``expr`` / ``aggregate`` are retained so the refresh hook can re-derive
    the entry after an invalidation; the estimate fields are exactly what
    the recorded run reported, so a degraded answer built from them carries
    the *recorded sample variance* — an honest interval, unlike the flat
    prestored fallback.
    """

    expr: "Expression"
    aggregate: AggregateSpec
    value: float
    variance: float
    sample_points: int
    population_points: int
    blocks: int
    runs: int = 1

    def estimate(self) -> Estimate:
        return Estimate(
            value=self.value,
            variance=self.variance,
            sample_points=self.sample_points,
            population_points=self.population_points,
        )


@dataclass
class RelationSummary:
    """Cumulative block-sample evidence recorded against one relation."""

    blocks_sampled: int = 0
    tuples_seen: int = 0
    runs: int = 0


@dataclass(frozen=True)
class SynopsisCatalogInfo:
    """Introspection counters (in the style of ``plan_cache_info``)."""

    posteriors: int
    answers: int
    relations: int
    refresh_pending: int
    hits: int
    misses: int
    invalidations: int


class SynopsisCatalog:
    """Process-wide synopsis store (one per :class:`Database` by default).

    A catalog may be shared across databases by passing it to
    ``Database(synopsis_catalog=...)`` — sharing is sound exactly because
    keys embed relation size fingerprints, but the default is one catalog
    per database so independent test databases cannot see each other's
    evidence. All methods are thread-safe.
    """

    def __init__(
        self,
        decay: float = DEFAULT_DECAY,
        sink: TraceSink | None = None,
    ) -> None:
        if not 0.0 <= decay < 1.0:
            raise ReproError(f"synopsis decay must be in [0,1): {decay}")
        self.decay = decay
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        self._lock = threading.Lock()
        self._posteriors: dict[SynopsisKey, SelectivityPosterior] = {}
        self._posterior_relations: dict[SynopsisKey, tuple[str, ...]] = {}
        self._answers: dict[AnswerKey, AnswerSynopsis] = {}
        self._answer_relations: dict[AnswerKey, tuple[str, ...]] = {}
        self._relations: dict[str, RelationSummary] = {}
        self._refresh: "dict[tuple[str, str], AnswerSynopsis]" = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Selectivity posteriors
    # ------------------------------------------------------------------
    def posterior(self, key: SynopsisKey) -> SelectivityPosterior | None:
        """The pooled posterior for one operator subtree, if retained."""
        with self._lock:
            post = self._posteriors.get(key)
            if post is None or post.points < MIN_PRIOR_POINTS:
                self._misses += 1
                return None
            self._hits += 1
            return post

    def record_selectivity(
        self,
        key: SynopsisKey,
        relations: Iterable[str],
        tuples: int,
        points: int,
    ) -> None:
        """Absorb one run's observed (tuples, points) for one subtree."""
        if points <= 0:
            return
        with self._lock:
            existing = self._posteriors.get(key)
            if existing is None:
                self._posteriors[key] = SelectivityPosterior(
                    float(tuples), float(points)
                )
            else:
                self._posteriors[key] = existing.absorbed(tuples, points)
            self._posterior_relations[key] = tuple(sorted(set(relations)))

    # ------------------------------------------------------------------
    # Answer synopses
    # ------------------------------------------------------------------
    def answer(
        self, expr_hash: str, aggregate: AggregateSpec, fingerprint: str
    ) -> AnswerSynopsis | None:
        """The recorded answer for a whole query shape, if retained."""
        key = (expr_hash, aggregate_key(aggregate), fingerprint)
        with self._lock:
            entry = self._answers.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
            return entry

    def record_answer(
        self,
        expr: "Expression",
        aggregate: AggregateSpec,
        fingerprint: str,
        estimate: Estimate,
        blocks: int,
    ) -> None:
        """Retain a completed run's final estimate for degraded serving.

        When an entry already exists the one backed by more sampled points
        wins — the catalog keeps the best evidence it has ever seen for the
        shape, not merely the latest.
        """
        relations = tuple(sorted(set(expr.base_relations())))
        key = (expr.structural_hash(), aggregate_key(aggregate), fingerprint)
        with self._lock:
            existing = self._answers.get(key)
            runs = 1 if existing is None else existing.runs + 1
            if (
                existing is not None
                and existing.sample_points > estimate.sample_points
            ):
                self._answers[key] = replace(existing, runs=runs)
                return
            self._answers[key] = AnswerSynopsis(
                expr=expr,
                aggregate=aggregate,
                value=estimate.value,
                variance=estimate.variance,
                sample_points=estimate.sample_points,
                population_points=estimate.population_points,
                blocks=blocks,
                runs=runs,
            )
            self._answer_relations[key] = relations
            self._refresh.pop((key[0], key[1]), None)

    # ------------------------------------------------------------------
    # Relation summaries
    # ------------------------------------------------------------------
    def record_relation(self, name: str, blocks: int, tuples: int) -> None:
        """Absorb one run's per-relation block-sample totals."""
        with self._lock:
            summary = self._relations.setdefault(name, RelationSummary())
            summary.blocks_sampled += blocks
            summary.tuples_seen += tuples
            summary.runs += 1

    def relation_summary(self, name: str) -> RelationSummary | None:
        with self._lock:
            return self._relations.get(name)

    # ------------------------------------------------------------------
    # Invalidation, aging, refresh
    # ------------------------------------------------------------------
    def invalidate_relation(self, name: str) -> SynopsisInvalidated:
        """A committed mutation touched ``name``: drop answers, age priors.

        Answer synopses over the relation are dropped outright (their
        recorded value measured data that no longer exists) and queued for
        refresh; selectivity posteriors are *aged* — selectivities often
        survive appends approximately, so their evidence is decayed by
        ``decay`` per mutation and dropped only once it falls below
        ``MIN_PRIOR_POINTS``. Emits and returns a
        :class:`~repro.synopses.events.SynopsisInvalidated` event.
        """
        with self._lock:
            aged = dropped_posteriors = 0
            for key, relations in list(self._posterior_relations.items()):
                if name not in relations:
                    continue
                decayed = self._posteriors[key].aged(self.decay)
                if decayed.points < MIN_PRIOR_POINTS:
                    del self._posteriors[key]
                    del self._posterior_relations[key]
                    dropped_posteriors += 1
                else:
                    self._posteriors[key] = decayed
                    aged += 1
            dropped_answers = 0
            for key, relations in list(self._answer_relations.items()):
                if name not in relations:
                    continue
                entry = self._answers.pop(key)
                del self._answer_relations[key]
                self._refresh[(key[0], key[1])] = entry
                dropped_answers += 1
            self._relations.pop(name, None)
            self._invalidations += 1
            event = SynopsisInvalidated(
                relation=name,
                posteriors_aged=aged,
                posteriors_dropped=dropped_posteriors,
                answers_dropped=dropped_answers,
            )
        self.sink.emit(event)
        return event

    def pending_refresh(self) -> list[AnswerSynopsis]:
        """Entries dropped by invalidation, awaiting re-derivation."""
        with self._lock:
            return list(self._refresh.values())

    def pop_refresh(self) -> AnswerSynopsis | None:
        """Claim the oldest refresh-queue entry (None when drained)."""
        with self._lock:
            if not self._refresh:
                return None
            key = next(iter(self._refresh))
            return self._refresh.pop(key)

    def requeue_refresh(self, entry: AnswerSynopsis) -> None:
        """Return a claimed entry to the queue (a refresh run failed).

        A later real run of the same shape still supersedes it — the queue
        is keyed by shape, so ``record_answer`` pops the stale entry.
        """
        key = (entry.expr.structural_hash(), aggregate_key(entry.aggregate))
        with self._lock:
            self._refresh.setdefault(key, entry)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def info(self) -> SynopsisCatalogInfo:
        with self._lock:
            return SynopsisCatalogInfo(
                posteriors=len(self._posteriors),
                answers=len(self._answers),
                relations=len(self._relations),
                refresh_pending=len(self._refresh),
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
            )

    def posteriors(self) -> Mapping[SynopsisKey, SelectivityPosterior]:
        """A snapshot of the posterior store (tests, introspection)."""
        with self._lock:
            return dict(self._posteriors)

    def snapshot(self) -> dict:
        """A deep-enough copy of the whole state for replay experiments."""
        with self._lock:
            return {
                "posteriors": dict(self._posteriors),
                "posterior_relations": dict(self._posterior_relations),
                "answers": dict(self._answers),
                "answer_relations": dict(self._answer_relations),
                "relations": {
                    k: RelationSummary(v.blocks_sampled, v.tuples_seen, v.runs)
                    for k, v in self._relations.items()
                },
                "refresh": dict(self._refresh),
            }

    def restore(self, token: dict) -> None:
        """Reset the state to a :meth:`snapshot` token (replay runs)."""
        with self._lock:
            self._posteriors = dict(token["posteriors"])
            self._posterior_relations = dict(token["posterior_relations"])
            self._answers = dict(token["answers"])
            self._answer_relations = dict(token["answer_relations"])
            self._relations = {
                k: RelationSummary(v.blocks_sampled, v.tuples_seen, v.runs)
                for k, v in token["relations"].items()
            }
            self._refresh = dict(token["refresh"])

    def clear(self) -> None:
        """Drop everything and reset counters."""
        with self._lock:
            self._posteriors.clear()
            self._posterior_relations.clear()
            self._answers.clear()
            self._answer_relations.clear()
            self._relations.clear()
            self._refresh.clear()
            self._hits = self._misses = self._invalidations = 0
