"""Binding the synopsis catalog to one session's plan.

A :class:`SynopsisBinder` is the per-session adapter between the shared
:class:`~repro.synopses.catalog.SynopsisCatalog` and one
:class:`~repro.engine.plan.StagedPlan`:

* during physical lowering, :meth:`bind` is called once per operator node
  with the node's *logical subtree* and its
  :class:`~repro.estimation.selectivity.SelectivityTracker` — a retained
  posterior for that subtree (same structural hash, same base-relation
  sizes) warm-starts the tracker with prior pseudo-counts and emits a
  :class:`~repro.synopses.events.SynopsisHit`;
* after a successful run, :meth:`absorb_run` feeds the run's *observed*
  stage counts (never the prior — no evidence is counted twice), its
  per-relation scan totals, and its final estimate back into the catalog.

Probe sessions (admission pricing) bind but are never run, so they absorb
nothing; pinned trackers (pure prestored mode) are skipped entirely —
"prestored" means the operator neither learns nor borrows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observability.trace import NULL_SINK, NullSink, TraceSink
from repro.synopses.catalog import SynopsisCatalog, relation_fingerprint
from repro.synopses.events import SynopsisHit

if TYPE_CHECKING:
    from repro.catalog.catalog import Catalog
    from repro.engine.plan import StagedPlan
    from repro.estimation.selectivity import SelectivityTracker
    from repro.relational.expression import Expression
    from repro.timecontrol.executor import RunReport


class SynopsisBinder:
    """Per-session bridge between the catalog and a staged plan."""

    def __init__(
        self,
        synopses: SynopsisCatalog,
        catalog: "Catalog",
        sink: TraceSink | None = None,
    ) -> None:
        self.synopses = synopses
        self.catalog = catalog
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        # (key, tracker) per bound operator, in lowering order.
        self._bindings: list[tuple[tuple[str, str], tuple[str, ...], object]] = []
        self.hits = 0

    # ------------------------------------------------------------------
    # Lowering-time: warm-start
    # ------------------------------------------------------------------
    def bind(self, expr: "Expression", tracker: "SelectivityTracker") -> bool:
        """Attach one operator; warm-start it if the catalog has evidence.

        Returns whether a posterior was applied. Always records the
        binding so :meth:`absorb_run` can write this run's observations
        back under the same key.
        """
        if tracker.pinned:
            return False
        relations = tuple(sorted(set(expr.base_relations())))
        key = (
            expr.structural_hash(),
            relation_fingerprint(self.catalog, relations),
        )
        self._bindings.append((key, relations, tracker))
        posterior = self.synopses.posterior(key)
        if posterior is None:
            return False
        tracker.warm_start(posterior.tuples, posterior.points)
        self.hits += 1
        if not isinstance(self.sink, NullSink):
            self.sink.emit(
                SynopsisHit(
                    scope="warm_start",
                    key=key[0][:16],
                    relations=",".join(relations),
                    prior_points=posterior.points,
                    prior_mean=posterior.mean,
                    runs=posterior.runs,
                )
            )
        return True

    # ------------------------------------------------------------------
    # Run-end: absorb
    # ------------------------------------------------------------------
    def absorb_run(
        self,
        plan: "StagedPlan",
        report: "RunReport",
        expr: "Expression",
    ) -> None:
        """Feed one completed run's evidence back into the catalog.

        Selectivity posteriors pool the run's *observed* stage counts
        (warm-start priors excluded, so borrowed evidence is never
        re-deposited). The final in-quota estimate, when one exists, is
        retained as an answer synopsis keyed by the query *as written*
        (``expr``, pre-optimizer) so a later degrade decision for the same
        text hits regardless of rewriting.
        """
        for key, relations, tracker in self._bindings:
            points = tracker.total_points  # observed stages only
            if points > 0:
                self.synopses.record_selectivity(
                    key, relations, tracker.total_tuples, points
                )
        for scan in plan.scans:
            if scan.blocks_drawn > 0:
                self.synopses.record_relation(
                    scan.relation.name, scan.blocks_drawn, scan.cum_tuples
                )
        if report.estimate is None or report.degraded:
            return
        fingerprint = relation_fingerprint(self.catalog, expr.base_relations())
        self.synopses.record_answer(
            expr,
            plan.aggregate,
            fingerprint,
            report.estimate,
            report.blocks_within_quota,
        )
