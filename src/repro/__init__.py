"""repro — time-constrained aggregate relational query processing.

A full reproduction of Hou, Ozsoyoglu & Taneja, *Processing Aggregate
Relational Queries with Hard Time Constraints* (SIGMOD 1989): a prototype
DBMS that answers ``COUNT(E)`` queries within a hard time quota by staged
cluster sampling, run-time selectivity estimation, adaptive time-cost
formulas, and statistical time-control strategies.

Quickstart::

    from repro import Database, MachineProfile, rel, cmp

    db = Database(profile=MachineProfile.sun3_60(), seed=7)
    db.create_relation("r1", [("id", "int"), ("a", "int")],
                       rows=[(i, i % 100) for i in range(10_000)])
    result = db.estimate(rel("r1").where(cmp("a", "<", 50)), quota=10.0)
    print(result.estimate, result.confidence_interval(0.95))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table.
"""

from repro import caches
from repro.catalog import Attribute, AttributeType, Catalog, Schema
from repro.core import (
    DEFAULT_OPTIONS,
    Database,
    ExecutionContext,
    QueryOptions,
    QueryResult,
    QuerySession,
)
from repro.costmodel import CostModel
from repro.errors import (
    CatalogError,
    CostModelError,
    EstimationError,
    ExpressionError,
    InjectedFault,
    QuotaExpired,
    ReproError,
    SamplingExhausted,
    SchemaError,
    StorageError,
    TimeControlError,
)
from repro.estimation import AggregateSpec, Estimate, avg_of, count, sum_of
from repro.faults import (
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultSalvaged,
)
from repro.kernels import (
    KernelCacheInfo,
    clear_kernel_cache,
    kernel_cache_info,
)
from repro.observability import (
    JsonlSink,
    NullSink,
    RecordingSink,
    TeeSink,
    TraceEvent,
    TraceSink,
)
from repro.planner import (
    PlanExplanation,
    RuleApplication,
    clear_plan_cache,
    optimizer_enabled,
    plan_cache_info,
)
from repro.relational import (
    attr,
    cmp,
    count_exact,
    difference,
    expand_count,
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.storage.bufferpool import (
    BufferPool,
    BufferPoolInfo,
    PooledBatch,
    bufferpool_cache_info,
    clear_bufferpool_cache,
    default_pool,
    invalidate_bufferpool_relation,
)
from repro.storage.events import (
    BufferEvicted,
    BufferHit,
    BufferInvalidated,
    ShardMerged,
    ShardScanStarted,
)
from repro.storage.partitioned import (
    HeapShard,
    PartitionedHeapFile,
    ShardCacheInfo,
    invalidate_shard_cache_relation,
)
from repro.synopses import (
    SynopsisBinder,
    SynopsisCatalog,
    SynopsisHit,
    SynopsisInvalidated,
    SynopsisRefreshed,
)
from repro.timecontrol import (
    AnyOf,
    ErrorConstrained,
    FixedFractionHeuristic,
    HardDeadline,
    OneAtATimeInterval,
    RunReport,
    SingleInterval,
    SoftDeadline,
    TimeConstrainedExecutor,
)
from repro.timekeeping import (
    Clock,
    CostCharger,
    CostKind,
    MachineProfile,
    SimulatedClock,
    WallClock,
)

__version__ = "1.0.0"

__all__ = [
    "AnyOf",
    "Attribute",
    "AttributeType",
    "BufferEvicted",
    "BufferHit",
    "BufferInvalidated",
    "BufferPool",
    "BufferPoolInfo",
    "Catalog",
    "CatalogError",
    "Clock",
    "CostModel",
    "Database",
    "AggregateSpec",
    "DEFAULT_OPTIONS",
    "Estimate",
    "ErrorConstrained",
    "ExecutionContext",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSalvaged",
    "FixedFractionHeuristic",
    "HardDeadline",
    "HeapShard",
    "InjectedFault",
    "JsonlSink",
    "KernelCacheInfo",
    "NullSink",
    "OneAtATimeInterval",
    "PartitionedHeapFile",
    "PlanExplanation",
    "PooledBatch",
    "QueryOptions",
    "QueryResult",
    "QuerySession",
    "RecordingSink",
    "RuleApplication",
    "RunReport",
    "ShardCacheInfo",
    "ShardMerged",
    "ShardScanStarted",
    "TeeSink",
    "TraceEvent",
    "TraceSink",
    "SingleInterval",
    "SoftDeadline",
    "SynopsisBinder",
    "SynopsisCatalog",
    "SynopsisHit",
    "SynopsisInvalidated",
    "SynopsisRefreshed",
    "TimeConstrainedExecutor",
    "CostCharger",
    "CostKind",
    "CostModelError",
    "EstimationError",
    "ExpressionError",
    "MachineProfile",
    "QuotaExpired",
    "ReproError",
    "SamplingExhausted",
    "Schema",
    "SchemaError",
    "SimulatedClock",
    "StorageError",
    "TimeControlError",
    "WallClock",
    "attr",
    "avg_of",
    "bufferpool_cache_info",
    "caches",
    "clear_bufferpool_cache",
    "clear_kernel_cache",
    "clear_plan_cache",
    "cmp",
    "count",
    "count_exact",
    "default_pool",
    "difference",
    "expand_count",
    "intersect",
    "invalidate_bufferpool_relation",
    "invalidate_shard_cache_relation",
    "join",
    "kernel_cache_info",
    "optimizer_enabled",
    "plan_cache_info",
    "project",
    "rel",
    "select",
    "sum_of",
    "union",
    "__version__",
]
