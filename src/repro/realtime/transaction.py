"""Transaction-level quota budgeting — the paper's real-time motivation.

Section 1: "Another use of our approach is in multiuser, realtime databases.
By precisely fixing the execution times of database queries in a
transaction, accurate estimates for transaction execution times become
possible. This in turn plays an important role in minimizing the number of
transactions that miss their deadlines [AbMo 88]."

This module builds that layer on top of the per-query controller: a
*transaction* is a sequence of aggregate queries sharing one deadline, and a
:class:`QuotaAllocator` splits the deadline into per-query quotas. Because
each query's execution time is pinned to its quota (that is the whole point
of the paper), the transaction's completion time becomes predictable and the
scheduler can enforce its deadline:

* :class:`ProportionalAllocator` — split the whole budget up front by
  weight; simple, but time a query leaves unused is lost.
* :class:`FeedbackAllocator` — re-split the *remaining* budget before each
  query, so early finishers (e.g. error-constrained stops) donate their
  leftover to the queries still to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.database import Database
from repro.core.result import QueryResult
from repro.errors import TimeControlError
from repro.estimation.aggregates import COUNT, AggregateSpec
from repro.relational.expression import Expression
from repro.timecontrol.stopping import StoppingCriterion
from repro.timecontrol.strategies import OneAtATimeInterval


@dataclass(frozen=True)
class QueryTask:
    """One aggregate query inside a transaction."""

    name: str
    expr: Expression
    aggregate: AggregateSpec = COUNT
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise TimeControlError("query task needs a name")
        if self.weight <= 0:
            raise TimeControlError(
                f"task {self.name!r}: weight must be positive"
            )


@dataclass(frozen=True)
class WriteTask:
    """One committed append inside a transaction.

    Executes as :meth:`repro.core.database.Database.append_rows` — the
    write itself is uncharged on the simulated clock (like bulk ``load``;
    the paper budgets *query* time, not maintenance I/O), but its commit
    has teeth: it invalidates the plan cache entries, prestored statistics,
    and synopsis-catalog entries derived from the old contents, so every
    later query in this or any other transaction sees consistent derived
    state. ``weight`` is fixed at 0 so quota allocators never grant
    sampling budget to a write.
    """

    name: str
    relation: str
    rows: tuple = ()
    weight: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise TimeControlError("write task needs a name")
        if not self.relation:
            raise TimeControlError(f"task {self.name!r}: needs a relation")
        object.__setattr__(
            self, "rows", tuple(tuple(row) for row in self.rows)
        )


class QuotaAllocator:
    """Splits a transaction's time budget into per-query quotas."""

    def allocate(
        self, tasks: Sequence[QueryTask], index: int, remaining: float
    ) -> float:
        """Quota for ``tasks[index]`` given ``remaining`` seconds."""
        raise NotImplementedError


class ProportionalAllocator(QuotaAllocator):
    """Static weight-proportional split of the *initial* budget.

    The allocator is handed the remaining time but sizes each query by its
    share of the total weight — leftover time from early finishers is not
    redistributed (the baseline the feedback allocator improves on).
    """

    def __init__(self) -> None:
        self._initial: float | None = None

    def allocate(
        self, tasks: Sequence[QueryTask], index: int, remaining: float
    ) -> float:
        if self._initial is None:
            self._initial = remaining
        total_weight = sum(t.weight for t in tasks)
        return self._initial * tasks[index].weight / total_weight


class FeedbackAllocator(QuotaAllocator):
    """Re-split the remaining budget before each query (rolls leftover
    forward), keeping weight proportions among the queries still to run."""

    def allocate(
        self, tasks: Sequence[QueryTask], index: int, remaining: float
    ) -> float:
        pending_weight = sum(t.weight for t in tasks[index:])
        return remaining * tasks[index].weight / pending_weight


@dataclass
class TransactionResult:
    """Outcome of one deadline-bound transaction."""

    deadline: float
    results: dict[str, QueryResult] = field(default_factory=dict)
    quotas: dict[str, float] = field(default_factory=dict)
    elapsed: float = 0.0
    aborted_after: str | None = None

    @property
    def met_deadline(self) -> bool:
        return self.aborted_after is None and self.elapsed <= self.deadline

    @property
    def completed_queries(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        status = "MET" if self.met_deadline else "MISSED"
        return (
            f"transaction {status} deadline {self.deadline:g}s "
            f"(elapsed {self.elapsed:.3f}s, "
            f"{self.completed_queries} queries)"
        )


class TransactionScheduler:
    """Runs query batches under one deadline with budgeted quotas."""

    def __init__(
        self,
        database: Database,
        allocator: QuotaAllocator | None = None,
        strategy_factory=lambda: OneAtATimeInterval(d_beta=24.0),
        stopping: StoppingCriterion | None = None,
        min_query_quota: float = 1e-6,
    ) -> None:
        self.database = database
        self.allocator = allocator if allocator is not None else FeedbackAllocator()
        self.strategy_factory = strategy_factory
        self.stopping = stopping
        self.min_query_quota = min_query_quota

    def run(
        self,
        tasks: Sequence[QueryTask],
        deadline: float,
        seed: int | None = None,
        **estimate_kwargs,
    ) -> TransactionResult:
        """Execute ``tasks`` in order within ``deadline`` seconds total.

        Each query consumes the simulated time its run actually took (its
        completed stages plus any overspend), not its nominal quota, so
        leftover time is visible to the allocator. If the budget for a
        query falls below ``min_query_quota`` the transaction aborts —
        mirroring a real-time scheduler killing a transaction that can no
        longer meet its deadline.
        """
        if deadline <= 0:
            raise TimeControlError(f"deadline must be positive: {deadline}")
        if not any(isinstance(t, QueryTask) for t in tasks):
            raise TimeControlError("transaction needs at least one query")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise TimeControlError(f"duplicate task names in {names}")

        outcome = TransactionResult(deadline=deadline)
        remaining = deadline
        for index, task in enumerate(tasks):
            if isinstance(task, WriteTask):
                self.database.append_rows(task.relation, task.rows)
                continue
            quota = min(
                self.allocator.allocate(tasks, index, remaining), remaining
            )
            if quota < self.min_query_quota:
                outcome.aborted_after = task.name
                break
            result = self.database.estimate(
                task.expr,
                task.aggregate,
                quota=quota,
                strategy=self.strategy_factory(),
                stopping=self.stopping,
                seed=None if seed is None else seed + index,
                **estimate_kwargs,
            )
            consumed = sum(s.duration for s in result.report.stages)
            outcome.results[task.name] = result
            outcome.quotas[task.name] = quota
            outcome.elapsed += consumed
            remaining = deadline - outcome.elapsed
            if remaining <= 0 and index < len(tasks) - 1:
                outcome.aborted_after = task.name
                break
        return outcome
