"""Transaction-level deadline budgeting (the paper's [AbMo 88] use case)."""

from repro.realtime.transaction import (
    FeedbackAllocator,
    ProportionalAllocator,
    QueryTask,
    QuotaAllocator,
    TransactionResult,
    TransactionScheduler,
)

__all__ = [
    "FeedbackAllocator",
    "ProportionalAllocator",
    "QueryTask",
    "QuotaAllocator",
    "TransactionResult",
    "TransactionScheduler",
]
