"""Transaction-level deadline budgeting (the paper's [AbMo 88] use case).

:func:`run_transaction` routes a transaction through the
:mod:`repro.server` serving layer — same allocators, same deadline, but
every query flows through admission control and the server metrics — so
the two quota layers share one execution path and cannot drift apart.
"""

from repro.realtime.adapter import run_transaction
from repro.realtime.transaction import (
    FeedbackAllocator,
    ProportionalAllocator,
    QueryTask,
    QuotaAllocator,
    TransactionResult,
    TransactionScheduler,
    WriteTask,
)

__all__ = [
    "FeedbackAllocator",
    "ProportionalAllocator",
    "QueryTask",
    "QuotaAllocator",
    "TransactionResult",
    "TransactionScheduler",
    "WriteTask",
    "run_transaction",
]
