"""Transactions as server requests — one deadline, one quota layer.

:mod:`repro.realtime` splits a transaction's deadline into per-query quotas
with a :class:`~repro.realtime.transaction.QuotaAllocator`;
:mod:`repro.server` schedules individual deadline-bearing requests. This
adapter expresses the former *through* the latter, so the two layers share
one execution path and cannot drift apart: each transaction query becomes a
:class:`~repro.server.request.QueryRequest` whose quota is whatever the
allocator grants out of the transaction's remaining budget on the server's
clock, and the familiar :class:`~repro.realtime.transaction.
TransactionResult` is assembled from the server outcomes.

Semantics mirror :class:`~repro.realtime.transaction.TransactionScheduler`:
queries run in order, each consumes the simulated time it actually took
(leftover rolls forward under :class:`FeedbackAllocator`), and the
transaction aborts when a query's granted quota falls below
``min_query_quota`` — except that here every query also flows through the
server's admission, shedding, and metrics machinery.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TimeControlError
from repro.realtime.transaction import (
    FeedbackAllocator,
    QueryTask,
    QuotaAllocator,
    TransactionResult,
    WriteTask,
)
from repro.server.request import QueryRequest
from repro.server.scheduler import QueryServer


def run_transaction(
    server: QueryServer,
    tasks: Sequence[QueryTask],
    deadline: float,
    allocator: QuotaAllocator | None = None,
    client_id: str = "txn",
    seed: int | None = None,
    min_query_quota: float = 1e-6,
) -> TransactionResult:
    """Run one deadline-bound transaction through the serving layer.

    ``deadline`` is the transaction's total budget in seconds from now (on
    the server clock). Returns the same :class:`TransactionResult` shape as
    :meth:`TransactionScheduler.run`; the per-request outcomes additionally
    land in ``server.outcomes`` and the server metrics, and queries the
    server rejects/degrades/sheds abort the transaction at that task (their
    name in ``aborted_after``), because a transaction missing one answer has
    missed its deadline contract.
    """
    if deadline <= 0:
        raise TimeControlError(f"deadline must be positive: {deadline}")
    if not any(isinstance(t, QueryTask) for t in tasks):
        raise TimeControlError("transaction needs at least one query")
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise TimeControlError(f"duplicate task names in {names}")
    allocator = allocator if allocator is not None else FeedbackAllocator()

    start = server.clock.now()
    outcome = TransactionResult(deadline=deadline)
    for index, task in enumerate(tasks):
        if isinstance(task, WriteTask):
            # Committed write: uncharged on the clock, but its commit
            # invalidates plan-cache / statistics / synopsis state.
            server.database.append_rows(task.relation, task.rows)
            continue
        elapsed = server.clock.now() - start
        remaining = deadline - elapsed
        quota = min(allocator.allocate(tasks, index, remaining), remaining)
        if quota < min_query_quota:
            outcome.aborted_after = task.name
            break
        request = QueryRequest(
            expr=task.expr,
            quota=quota,
            client_id=client_id,
            aggregate=task.aggregate,
            arrival=server.clock.now(),
            seed=None if seed is None else seed + index,
        )
        served = server.serve(request)
        outcome.quotas[task.name] = quota
        if served.result is not None:
            outcome.results[task.name] = served.result
        outcome.elapsed = server.clock.now() - start
        if served.outcome.value != "answered":
            outcome.aborted_after = task.name
            break
        if outcome.elapsed >= deadline and index < len(tasks) - 1:
            outcome.aborted_after = task.name
            break
    else:
        outcome.elapsed = server.clock.now() - start
    return outcome
