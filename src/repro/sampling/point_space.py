"""The point-space model of [HoOT 88] (Section 2 of the paper).

A Select–Join–Intersect–Project expression over operand relations
``r_1 … r_n`` is modelled as an ``n``-dimensional *point space* with
``Π|r_i|`` points; a point is 1 when the corresponding tuple combination
produces an output tuple. ``COUNT(E)`` is the number of 1-points, and the
estimators scale sample 1-counts up by the space size.

Under the cluster sampling plan the same space is viewed as ``Π D_i``
*space blocks* (one disk block per dimension, Figure 2.2).

:class:`PointSpace` carries the static geometry; :class:`SampledRegion`
tracks how much of it a staged sample has covered, for both fulfillment
modes:

* **full fulfillment** — every combination of sampled blocks is evaluated,
  so after the relations have ``m_1 … m_n`` sampled tuples the evaluated
  region has ``Π m_j`` points;
* **partial fulfillment** — only new×new combinations are evaluated each
  stage, so the region is the sum of the per-stage products.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import EstimationError


@dataclass(frozen=True)
class PointSpace:
    """Static geometry of one SJIP term's point space."""

    relation_names: tuple[str, ...]
    tuple_counts: tuple[int, ...]
    block_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.relation_names:
            raise EstimationError("point space needs at least one dimension")
        if not (
            len(self.relation_names)
            == len(self.tuple_counts)
            == len(self.block_counts)
        ):
            raise EstimationError("point-space dimension lists disagree")
        if len(set(self.relation_names)) != len(self.relation_names):
            raise EstimationError(
                "point space requires distinct operand relations "
                f"(got {self.relation_names}); self-joins are not "
                "estimable under the paper's sampling plan"
            )
        if any(n <= 0 for n in self.tuple_counts) or any(
            d <= 0 for d in self.block_counts
        ):
            raise EstimationError("empty relations have no point space")

    @property
    def dimensions(self) -> int:
        return len(self.relation_names)

    @property
    def total_points(self) -> int:
        """``N`` — Π |r_i|, the number of points."""
        return math.prod(self.tuple_counts)

    @property
    def total_space_blocks(self) -> int:
        """``B`` — Π D_i, the number of space blocks."""
        return math.prod(self.block_counts)


class SampledRegion:
    """Evaluated-point bookkeeping for one term under staged sampling."""

    def __init__(self, space: PointSpace, full_fulfillment: bool = True) -> None:
        self.space = space
        self.full_fulfillment = full_fulfillment
        self._cum_tuples = [0] * space.dimensions
        self._points_evaluated = 0
        self._per_stage_points: list[int] = []

    @property
    def cumulative_tuples(self) -> tuple[int, ...]:
        """``m_j`` per dimension — sampled tuples so far."""
        return tuple(self._cum_tuples)

    @property
    def points_evaluated(self) -> int:
        """Total points covered by all completed stages."""
        return self._points_evaluated

    @property
    def per_stage_points(self) -> list[int]:
        return list(self._per_stage_points)

    def record_stage(self, new_tuples: Sequence[int]) -> int:
        """Record a stage that added ``new_tuples[j]`` tuples per dimension.

        Returns the number of *newly evaluated* points this stage.
        """
        if len(new_tuples) != self.space.dimensions:
            raise EstimationError(
                f"stage reported {len(new_tuples)} dimensions, "
                f"space has {self.space.dimensions}"
            )
        if any(n < 0 for n in new_tuples):
            raise EstimationError(f"negative stage sample sizes {new_tuples}")
        if self.full_fulfillment:
            before = math.prod(self._cum_tuples) if all(self._cum_tuples) else 0
            for j, n in enumerate(new_tuples):
                self._cum_tuples[j] += n
            after = math.prod(self._cum_tuples) if all(self._cum_tuples) else 0
            new_points = after - before
        else:
            new_points = math.prod(new_tuples) if all(new_tuples) else 0
            for j, n in enumerate(new_tuples):
                self._cum_tuples[j] += n
        self._points_evaluated += new_points
        self._per_stage_points.append(new_points)
        return new_points

    def predicted_new_points(self, new_tuples: Sequence[int]) -> int:
        """Points a hypothetical stage with these sample sizes would add."""
        if self.full_fulfillment:
            before = math.prod(self._cum_tuples) if all(self._cum_tuples) else 0
            grown = [m + n for m, n in zip(self._cum_tuples, new_tuples)]
            after = math.prod(grown) if all(grown) else 0
            return after - before
        return math.prod(new_tuples) if all(new_tuples) else 0

    @property
    def coverage(self) -> float:
        """Fraction of the point space evaluated so far."""
        return self._points_evaluated / self.space.total_points
