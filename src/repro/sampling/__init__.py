"""Sampling substrate: block samplers and the point-space model (system S7)."""

from repro.sampling.point_space import PointSpace, SampledRegion
from repro.sampling.sampler import (
    BlockSampler,
    blocks_for_fraction,
    derive_shard_rng,
    shard_seed,
)

__all__ = [
    "BlockSampler",
    "PointSpace",
    "SampledRegion",
    "blocks_for_fraction",
    "derive_shard_rng",
    "shard_seed",
]
