"""Staged block sampling without replacement.

The paper's cluster sampling plan draws whole disk blocks: "disk blocks are
randomly chosen from each operand relation" (Section 2), without replacement
across stages — ``SAMPLE-SET`` in Figure 3.1 accumulates the drawn block
numbers and ``New-Sample-Select`` draws only new ones.

:class:`BlockSampler` pre-shuffles the block ids of one relation with the
run's RNG and hands out successive prefixes, which is exactly sampling
without replacement with O(1) bookkeeping per stage.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingExhausted
from repro.storage.heapfile import HeapFile


class BlockSampler:
    """Without-replacement block sampler over one relation."""

    def __init__(self, relation: HeapFile, rng: np.random.Generator) -> None:
        self.relation = relation
        self._order = rng.permutation(relation.block_count)
        self._next = 0

    @property
    def drawn_blocks(self) -> int:
        """Blocks handed out so far (the relation's share of SAMPLE-SET)."""
        return self._next

    @property
    def drawn_block_ids(self) -> list[int]:
        """The block ids handed out so far, in draw order (SAMPLE-SET)."""
        return self._order[: self._next].tolist()

    @property
    def remaining_blocks(self) -> int:
        return len(self._order) - self._next

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._order)

    @property
    def drawn_fraction(self) -> float:
        """Cumulative sample fraction ``d / D`` of this relation."""
        if len(self._order) == 0:
            return 1.0
        return self._next / len(self._order)

    def draw(self, n_blocks: int) -> list[int]:
        """Return the next ``n_blocks`` sampled block ids.

        Raises :class:`SamplingExhausted` if fewer blocks remain; callers
        should clamp with :attr:`remaining_blocks` first (the executor does).
        """
        if n_blocks < 0:
            raise SamplingExhausted(f"cannot draw {n_blocks} blocks")
        if n_blocks > self.remaining_blocks:
            raise SamplingExhausted(
                f"relation {self.relation.name!r}: asked for {n_blocks} "
                f"blocks but only {self.remaining_blocks} remain unsampled"
            )
        ids = self._order[self._next : self._next + n_blocks]
        self._next += n_blocks
        return ids.tolist()

    # ------------------------------------------------------------------
    # Salvage support (fault injection)
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Opaque rollback token: the draw cursor."""
        return self._next

    def restore(self, token: int) -> None:
        """Roll the cursor back to a :meth:`snapshot` token.

        The pre-shuffled order is never re-drawn, so a restored sampler
        hands out exactly the block ids of the discarded attempt — which
        is what makes a salvaged stage's retry deterministic.
        """
        if not 0 <= token <= self._next:
            raise SamplingExhausted(
                f"relation {self.relation.name!r}: cannot restore cursor to "
                f"{token} (currently at {self._next})"
            )
        self._next = token


_SHARD_STREAM_TAG = 0x73686172  # "shar": domain-separates shard streams


def shard_seed(rng: np.random.Generator, shard: int) -> int:
    """A stable per-shard seed derived from the session RNG's seed material.

    Like :func:`~repro.faults.injector.derive_fault_rng`, this reads the
    generator's :class:`~numpy.random.SeedSequence` — pure seed material,
    so the session stream is never consumed and sampling stays bit-identical
    whether or not shard streams are derived (invariant 10). The tag keeps
    shard streams independent of the salted fault streams.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:  # exotic bit generator: fall back to the shard alone
        return shard
    state = seed_seq.generate_state(4).tolist()
    derived = np.random.SeedSequence([_SHARD_STREAM_TAG, shard, *state])
    return int(derived.generate_state(1)[0])


def derive_shard_rng(rng: np.random.Generator, shard: int) -> np.random.Generator:
    """An independent per-shard RNG keyed on the session seed material.

    Shard workers doing randomized shard-local work (none of the built-in
    operators do today — the global block permutation *is* the sample)
    must draw from this, never from the session stream, so per-shard
    parallelism can never perturb the global draws.
    """
    return np.random.default_rng(shard_seed(rng, shard))


def blocks_for_fraction(relation: HeapFile, fraction: float) -> int:
    """Whole blocks corresponding to sample fraction ``fraction``.

    The paper states sample sizes in the relative measure ``f = d/D = m/N``
    and takes *equal fractions from all relations* (Section 3.1); this maps
    a fraction to an integral block count, at least one block whenever the
    fraction is positive.
    """
    if fraction <= 0:
        return 0
    d = int(round(fraction * relation.block_count))
    return max(1, d)
