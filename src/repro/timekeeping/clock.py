"""Clock abstractions.

The paper reads the workstation clock (``START-TIME`` / ``CURRENT-TIME`` in
Figure 3.1) and arms a timer interrupt for the quota. We abstract that behind
a tiny :class:`Clock` protocol with two implementations:

* :class:`SimulatedClock` — a deterministic virtual clock advanced explicitly
  by the :class:`repro.timekeeping.charger.CostCharger`. This is the default
  for experiments: it makes 200-run tables reproducible and lets the true
  cost of an aborted stage be known exactly (the paper's ``ovsp`` column).
* :class:`WallClock` — ``time.perf_counter``; lets the very same controller
  run against real elapsed time, which is how the library would be deployed
  on a live system.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import TimeControlError


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface used across the library."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one run)."""
        ...  # pragma: no cover - protocol


class SimulatedClock:
    """A virtual clock advanced explicitly in simulated seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise TimeControlError(f"clock cannot start negative: {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise TimeControlError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, instant: float) -> float:
        """Jump forward to ``instant`` (no-op if it is already past).

        The idle fast-forward a discrete-event scheduler needs: when the
        run queue is empty the server sleeps until the next arrival. Time
        never moves backwards, so an ``instant`` in the past is a no-op.
        """
        if instant > self._now:
            self._now = float(instant)
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.6f})"


class WallClock:
    """Real elapsed time via ``time.perf_counter`` (zeroed at creation)."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def __repr__(self) -> str:
        return f"WallClock(now={self.now():.6f})"
