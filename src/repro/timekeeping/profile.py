"""Machine cost profiles — the ground truth the controller must learn.

The paper's experiments ran on a SUN 3/60 and measured real elapsed time. In
this reproduction every primitive operation of the storage and operator
substrates *charges* simulated seconds through a
:class:`repro.timekeeping.charger.CostCharger`. The per-unit charges come
from a :class:`MachineProfile` — the **true** coefficients of the machine.

Crucially, the controller's adaptive cost model (``repro.costmodel``) never
sees this profile. It starts from deliberately mismatched defaults (the paper
initialised its coefficients from experiments with the largest 1 KB tuples
and adapted them at run time, Section 5) and must learn the truth from
measured stage times. That separation is what makes the "adaptive time-cost
formula" claim testable in simulation.

The :meth:`MachineProfile.sun3_60` profile is calibrated so that the paper's
quotas admit the same order of sampled blocks as its tables: a 10-second
selection quota admits roughly 50–95 one-kilobyte blocks, and a 2.5-second
intersection quota roughly 20–30 blocks (Figures 5.1/5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import CostModelError


class CostKind(enum.Enum):
    """Primitive chargeable operations of the simulated machine."""

    BLOCK_READ = "block_read"  # random read of one base-relation disk block
    PAGE_READ = "page_read"  # sequential read of one intermediate page
    PAGE_WRITE = "page_write"  # write one intermediate page to disk
    SELECT_CHECK = "select_check"  # evaluate one selection predicate
    TEMP_WRITE = "temp_write"  # spool one tuple into an operator temp file
    SORT_UNIT = "sort_unit"  # one n*log2(n) unit of external sorting
    SORT_TUPLE = "sort_tuple"  # linear per-tuple part of external sorting
    MERGE_TUPLE = "merge_tuple"  # read + compare one tuple during a merge
    OUTPUT_TUPLE = "output_tuple"  # materialise one operator output tuple
    DEDUPE_TUPLE = "dedupe_tuple"  # duplicate check of one tuple (Project)
    OP_INIT = "op_init"  # fixed setup cost of one operator invocation
    MERGE_INIT = "merge_init"  # fixed setup cost of one pairwise merge
    STAGE_OVERHEAD = "stage_overhead"  # planning + sample drawing per stage


@dataclass(frozen=True)
class MachineProfile:
    """True seconds-per-unit for each :class:`CostKind`.

    ``noise_sigma`` is the standard deviation of the multiplicative
    log-normal jitter the :class:`CostCharger` applies per charge call; it
    models both 1989 clock granularity and genuine run-to-run variation, and
    is the source of the "risk" a time-control strategy must manage.
    """

    name: str
    rates: Mapping[CostKind, float] = field(default_factory=dict)
    noise_sigma: float = 0.12

    def __post_init__(self) -> None:
        missing = [k for k in CostKind if k not in self.rates]
        if missing:
            raise CostModelError(
                f"profile {self.name!r} missing rates for {missing}"
            )
        bad = {k: v for k, v in self.rates.items() if v < 0}
        if bad:
            raise CostModelError(f"profile {self.name!r} has negative rates {bad}")
        if self.noise_sigma < 0:
            raise CostModelError("noise_sigma must be >= 0")

    def rate(self, kind: CostKind) -> float:
        """True seconds per unit of ``kind``."""
        return self.rates[kind]

    def with_noise(self, noise_sigma: float) -> "MachineProfile":
        """A copy of this profile with a different jitter level."""
        return replace(self, noise_sigma=noise_sigma)

    def scaled(self, factor: float, name: str | None = None) -> "MachineProfile":
        """A uniformly faster/slower machine (all rates times ``factor``)."""
        if factor <= 0:
            raise CostModelError(f"scale factor must be positive: {factor}")
        return MachineProfile(
            name=name or f"{self.name}*{factor:g}",
            rates={k: v * factor for k, v in self.rates.items()},
            noise_sigma=self.noise_sigma,
        )

    # ------------------------------------------------------------------
    # Canned profiles
    # ------------------------------------------------------------------
    @classmethod
    def sun3_60(cls, noise_sigma: float = 0.18) -> "MachineProfile":
        """A 1989 SUN 3/60-class machine (see module docstring)."""
        return cls(
            name="sun3_60",
            rates={
                CostKind.BLOCK_READ: 6.0e-2,
                CostKind.PAGE_READ: 2.5e-2,
                CostKind.PAGE_WRITE: 4.5e-2,
                CostKind.SELECT_CHECK: 5.5e-3,
                CostKind.TEMP_WRITE: 2.2e-3,
                CostKind.SORT_UNIT: 7.0e-4,
                CostKind.SORT_TUPLE: 1.6e-3,
                CostKind.MERGE_TUPLE: 1.1e-3,
                CostKind.OUTPUT_TUPLE: 2.0e-3,
                CostKind.DEDUPE_TUPLE: 1.3e-3,
                CostKind.OP_INIT: 3.0e-2,
                CostKind.MERGE_INIT: 1.2e-2,
                CostKind.STAGE_OVERHEAD: 4.0e-1,
            },
            noise_sigma=noise_sigma,
        )

    @classmethod
    def sun3_60_main_memory(cls, noise_sigma: float = 0.18) -> "MachineProfile":
        """The paper's main-memory evaluation variant (Section 4).

        "A main-memory-only version of the prototype DBMS is also being
        developed … after samples are taken, all data processing is
        confined to the main memory." Sample blocks are still read from
        disk (BLOCK_READ unchanged), but spooling, sorting, merging and
        output materialisation run at memory speed — temp I/O ~20× cheaper,
        CPU-bound per-tuple work ~3× cheaper (no buffer-manager overhead).
        Ablation A8 measures what the paper predicts: "the sampling approach
        with a time-control mechanism … will be very promising" when memory
        is large.
        """
        base = cls.sun3_60(noise_sigma=noise_sigma)
        rates = dict(base.rates)
        for kind in (CostKind.PAGE_READ, CostKind.PAGE_WRITE, CostKind.TEMP_WRITE):
            rates[kind] = rates[kind] / 20.0
        for kind in (
            CostKind.SORT_UNIT,
            CostKind.SORT_TUPLE,
            CostKind.MERGE_TUPLE,
            CostKind.OUTPUT_TUPLE,
            CostKind.DEDUPE_TUPLE,
            CostKind.SELECT_CHECK,
        ):
            rates[kind] = rates[kind] / 3.0
        return cls(
            name="sun3_60_main_memory", rates=rates, noise_sigma=noise_sigma
        )

    @classmethod
    def modern(cls, noise_sigma: float = 0.08) -> "MachineProfile":
        """A contemporary machine — everything ~3 orders of magnitude faster.

        Useful for the real-time (millisecond-quota) examples: the paper
        argues the same control loop applies when quotas shrink with the
        hardware.
        """
        return cls.sun3_60(noise_sigma=noise_sigma).scaled(1e-3, name="modern")

    @classmethod
    def uniform(cls, rate: float, noise_sigma: float = 0.0) -> "MachineProfile":
        """Every primitive costs exactly ``rate`` seconds — for unit tests."""
        return cls(
            name=f"uniform({rate:g})",
            rates={k: rate for k in CostKind},
            noise_sigma=noise_sigma,
        )
