"""Clock, machine profile, and cost-charging substrate (system S2)."""

from repro.timekeeping.charger import CostCharger
from repro.timekeeping.clock import Clock, SimulatedClock, WallClock
from repro.timekeeping.profile import CostKind, MachineProfile

__all__ = [
    "Clock",
    "CostCharger",
    "CostKind",
    "MachineProfile",
    "SimulatedClock",
    "WallClock",
]
