"""The cost charger — simulated work, deadlines, and measurement.

Every primitive operation in the storage and operator layers calls
:meth:`CostCharger.charge`, which advances the clock by
``rate(kind) * amount * jitter`` simulated seconds. Three concerns meet here:

* **Ground truth.** The charger applies the *true* machine profile plus
  multiplicative log-normal noise, so stage durations are realistically
  uncertain from the controller's point of view.
* **The timer interrupt.** :meth:`arm` installs a deadline. In ``hard`` mode
  a charge that crosses it raises :class:`repro.errors.QuotaExpired`
  mid-operation — the paper's hard time constraint, where "the execution is
  interrupted whenever the time quota is consumed" (Section 3.2). In
  ``record`` mode the crossing is only noted, which reproduces how the ERAM
  measurements let the aborted stage run to completion so the overspent time
  could be reported (Section 5).
* **Measurement.** :meth:`measure` brackets a code region and returns its
  elapsed charged time, which the adaptive cost model uses to refit its
  coefficients (Section 4's "record the actual amount of time spent on each
  step").
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import QuotaExpired, TimeControlError
from repro.observability.trace import NULL_SINK, CostCharged, TraceSink
from repro.timekeeping.clock import Clock, SimulatedClock
from repro.timekeeping.profile import CostKind, MachineProfile


@dataclass
class _Meter:
    """Result object of a :meth:`CostCharger.measure` region."""

    start: float
    elapsed: float = 0.0


class CostCharger:
    """Charges simulated time for primitive operations (see module docs)."""

    def __init__(
        self,
        profile: MachineProfile,
        clock: Clock | None = None,
        rng: np.random.Generator | None = None,
        sink: TraceSink | None = None,
        trace_costs: bool = False,
    ) -> None:
        self.profile = profile
        self.clock: Clock = clock if clock is not None else SimulatedClock()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        # Per-charge events sit on the hottest path in the system; they are
        # gated behind an explicit flag so untraced runs pay one bool check.
        self.trace_costs = trace_costs
        self._deadline: float | None = None
        self._hard = False
        self._first_crossing: float | None = None
        self.totals: dict[CostKind, float] = {k: 0.0 for k in CostKind}
        self.counts: dict[CostKind, float] = {k: 0.0 for k in CostKind}
        self.penalty_seconds = 0.0

    # ------------------------------------------------------------------
    # Deadline (timer interrupt) management
    # ------------------------------------------------------------------
    def arm(self, deadline: float, hard: bool) -> None:
        """Install the quota deadline (absolute clock time).

        ``hard=True`` aborts mid-charge with :class:`QuotaExpired`;
        ``hard=False`` records the first crossing and lets work continue.
        """
        if deadline < self.clock.now():
            raise TimeControlError(
                f"deadline {deadline:.6f} is already in the past "
                f"(clock={self.clock.now():.6f})"
            )
        self._deadline = deadline
        self._hard = hard
        self._first_crossing = None

    def disarm(self) -> None:
        """Remove the deadline (keeps crossing information)."""
        self._deadline = None

    @property
    def deadline(self) -> float | None:
        return self._deadline

    @property
    def crossed_at(self) -> float | None:
        """Clock value of the first charge that crossed the deadline."""
        return self._first_crossing

    def remaining(self) -> float:
        """Seconds until the armed deadline (may be negative); inf if none."""
        if self._deadline is None:
            return math.inf
        return self._deadline - self.clock.now()

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge(self, kind: CostKind, amount: float = 1.0) -> float:
        """Charge ``amount`` units of ``kind``; returns seconds charged.

        The charge is atomic: the clock advances by the full (jittered) cost
        even if the deadline is crossed, because the underlying "work" was
        in flight when the interrupt fired. ``QuotaExpired`` is raised after
        the advance when the deadline is armed in hard mode.
        """
        if amount < 0:
            raise TimeControlError(f"cannot charge negative amount {amount}")
        if amount == 0:
            return 0.0
        seconds = self.profile.rate(kind) * amount
        if self.profile.noise_sigma > 0 and seconds > 0:
            sigma = self.profile.noise_sigma
            # Mean-one log-normal jitter so expected cost matches the profile.
            seconds *= float(
                np.exp(self._rng.normal(-0.5 * sigma * sigma, sigma))
            )
        self.totals[kind] += seconds
        self.counts[kind] += amount
        now = self._advance(seconds)
        if self.trace_costs:
            self.sink.emit(
                CostCharged(
                    cost_kind=kind.name.lower(),
                    amount=amount,
                    seconds=seconds,
                    clock=now,
                )
            )
        if self._deadline is not None and now > self._deadline:
            if self._first_crossing is None:
                self._first_crossing = now
            if self._hard:
                deadline = self._deadline
                self._deadline = None  # fire once
                raise QuotaExpired(deadline, now)
        return seconds

    def penalty(self, seconds: float) -> float:
        """Charge ``seconds`` of raw stall time (injected or external waits).

        Unlike :meth:`charge`, a penalty has no rate, no jitter (the RNG is
        untouched), and no :class:`CostKind` — it models time lost to
        something other than modelled work: an injected slow read, a stage
        overrun, a retry backoff. It honours the armed deadline exactly
        like a charge does, so a stall can trip the hard timer interrupt.
        """
        if seconds < 0:
            raise TimeControlError(f"cannot charge negative penalty {seconds}")
        if seconds == 0:
            return 0.0
        self.penalty_seconds += seconds
        now = self._advance(seconds)
        if self._deadline is not None and now > self._deadline:
            if self._first_crossing is None:
                self._first_crossing = now
            if self._hard:
                deadline = self._deadline
                self._deadline = None  # fire once
                raise QuotaExpired(deadline, now)
        return seconds

    def _advance(self, seconds: float) -> float:
        clock = self.clock
        if isinstance(clock, SimulatedClock):
            return clock.advance(seconds)
        # Wall clock: real work takes real time; just observe it.
        return clock.now()

    # ------------------------------------------------------------------
    # Measurement (for the adaptive cost model)
    # ------------------------------------------------------------------
    @contextmanager
    def measure(self) -> Iterator[_Meter]:
        """Context manager measuring the charged time of its body."""
        meter = _Meter(start=self.clock.now())
        try:
            yield meter
        finally:
            meter.elapsed = self.clock.now() - meter.start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_charged(self) -> float:
        """Total simulated seconds charged so far, across all kinds."""
        return sum(self.totals.values())

    def reset_accounting(self) -> None:
        """Zero the per-kind totals/counts (clock is left untouched)."""
        self.totals = {k: 0.0 for k in CostKind}
        self.counts = {k: 0.0 for k in CostKind}
