"""Time-control core: strategies, stopping, executor (systems S11–S14)."""

from repro.timecontrol.executor import (
    RunReport,
    StageReport,
    TimeConstrainedExecutor,
)
from repro.timecontrol.sample_size import determine_fraction
from repro.timecontrol.stopping import (
    AnyOf,
    ErrorConstrained,
    HardDeadline,
    SoftDeadline,
    StopState,
    StoppingCriterion,
    ValueFunction,
    unlimited_quota,
)
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    OneAtATimeInterval,
    SingleInterval,
    TimeControlStrategy,
)

__all__ = [
    "AnyOf",
    "ErrorConstrained",
    "FixedFractionHeuristic",
    "HardDeadline",
    "OneAtATimeInterval",
    "RunReport",
    "SingleInterval",
    "SoftDeadline",
    "StageReport",
    "StopState",
    "StoppingCriterion",
    "ValueFunction",
    "TimeConstrainedExecutor",
    "TimeControlStrategy",
    "determine_fraction",
    "unlimited_quota",
]
