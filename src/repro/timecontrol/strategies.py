"""Time-control strategies (Section 3.3).

A strategy answers one question per stage: *how large a sample fraction
should stage i take, given the time left?* The paper compares three:

* :class:`OneAtATimeInterval` — the prototype's choice. For each operator
  individually, inflate the estimated selectivity to
  ``sel⁺ = sel^{i−1} + d_β·sqrt(Var(sel_i))`` (equation 3.3), so that
  ``P(sel⁺ ≥ sel_i) ≈ 1 − β``, then solve ``QCOST(f, SEL⁺) = T_i``
  (equation 3.4). Bigger ``d_β`` ⇒ more pessimistic selectivities ⇒
  smaller stages ⇒ lower risk of overspending but more stage overhead —
  exactly the trade the paper's tables sweep.
* :class:`SingleInterval` — treat the *whole query's* stage time as the
  random quantity: reserve ``d_α·sqrt(Var(t_i))`` out of ``T_i`` and solve
  ``μ_t = QCOST(f, SEL^{i−1}) = T_i − d_α·sqrt(Var(t_i))`` (equations
  3.1–3.2). The variance of the stage time is propagated from the operator
  selectivity variances and their pairwise covariances (estimated from the
  per-stage selectivity series), which the paper notes is "a very expensive
  procedure" — the reason its prototype prefers One-at-a-Time.
* :class:`FixedFractionHeuristic` — the paper mentions but does not define
  its heuristic strategy. We implement the natural non-statistical
  comparator: spend a fixed share γ of the remaining quota per stage, priced
  with the measured seconds-per-block of earlier stages (see DESIGN.md §3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.costmodel import steps as step_names
from repro.engine.nodes import SelProvider
from repro.engine.plan import StagedPlan
from repro.errors import TimeControlError
from repro.estimation.selectivity import SelectivityTracker
from repro.observability.trace import FractionChosen
from repro.timecontrol.sample_size import determine_fraction


class _BisectionCounter:
    """Counts Figure 3.4 iterations for the trace (see ``determine_fraction``)."""

    __slots__ = ("iterations",)

    def __init__(self) -> None:
        self.iterations = 0

    def __call__(self, iteration: int, fraction: float, cost: float) -> None:
        self.iterations = iteration


class TimeControlStrategy:
    """Base class: choose the next stage's sample fraction."""

    def choose_fraction(
        self, plan: StagedPlan, remaining_seconds: float, stage: int
    ) -> float | None:
        """Fraction for stage ``stage``; ``None`` = no feasible stage."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    # Helpers shared by the statistical strategies ------------------------
    @staticmethod
    def _budget(plan: StagedPlan, remaining_seconds: float) -> float:
        """Stage budget after reserving the predicted per-stage overhead."""
        overhead = plan.cost_model.predict(step_names.STAGE_OVERHEAD, [1.0])
        return remaining_seconds - overhead

    @staticmethod
    def _trace_choice(
        plan: StagedPlan,
        stage: int,
        fraction: float | None,
        budget: float,
        iterations: int = 0,
    ) -> float | None:
        plan.sink.emit(
            FractionChosen(
                stage=stage,
                fraction=fraction,
                budget_seconds=budget,
                bisection_iterations=iterations,
            )
        )
        return fraction


@dataclass
class OneAtATimeInterval(TimeControlStrategy):
    """Per-operator risk control via ``sel⁺`` (the prototype's strategy).

    ``d_beta`` is the paper's ``d_β`` — the number of (approximate) standard
    deviations added to each operator's selectivity. The experiments sweep
    d_β ∈ {0, 12, 24, 48, 72}; the values are large compared to normal-table
    quantiles because the SRS variance approximation understates the cluster
    plan's variance (Section 5.A explains this).
    """

    d_beta: float = 12.0
    epsilon_ratio: float = 0.02

    def __post_init__(self) -> None:
        if self.d_beta < 0:
            raise TimeControlError(f"d_beta must be >= 0, got {self.d_beta}")

    def sel_provider(self) -> SelProvider:
        d_beta = self.d_beta

        def provide(
            tracker: SelectivityTracker, new_points: int, space_points: int
        ) -> float:
            return tracker.sel_plus(d_beta, new_points, space_points)

        return provide

    def choose_fraction(
        self, plan: StagedPlan, remaining_seconds: float, stage: int
    ) -> float | None:
        budget = self._budget(plan, remaining_seconds)
        provider = self.sel_provider()
        counter = _BisectionCounter()
        fraction = determine_fraction(
            cost=lambda f: plan.predict_stage(f, provider),
            budget_seconds=budget,
            min_fraction=plan.min_feasible_fraction(),
            max_fraction=plan.max_remaining_fraction(),
            epsilon_ratio=self.epsilon_ratio,
            observer=counter,
        )
        return self._trace_choice(
            plan, stage, fraction, budget, counter.iterations
        )

    def describe(self) -> str:
        return f"OneAtATimeInterval(d_beta={self.d_beta})"


@dataclass
class SingleInterval(TimeControlStrategy):
    """Whole-query risk control: ``T_i = μ_t + d_α·sqrt(Var(t_i))``.

    The stage-time variance is propagated with the delta method:
    ``Var(QCOST) ≈ Σ_uv g_u g_v Cov(sel_u, sel_v)`` where ``g`` is the
    numerical gradient of QCOST with respect to each operator's selectivity,
    the diagonal uses the SRS selectivity variance, and the off-diagonal
    covariances come from the per-stage selectivity series observed so far
    ("covariances between sel^{i−1}'s … can be used as plausible values",
    Section 3.3.1).
    """

    d_alpha: float = 2.0
    epsilon_ratio: float = 0.02
    _gradient_step: float = field(default=1e-4, repr=False)

    def __post_init__(self) -> None:
        if self.d_alpha < 0:
            raise TimeControlError(f"d_alpha must be >= 0, got {self.d_alpha}")

    @staticmethod
    def _mean_provider() -> SelProvider:
        def provide(
            tracker: SelectivityTracker, new_points: int, space_points: int
        ) -> float:
            if tracker.stages_observed == 0 and not tracker.has_prior:
                return tracker.initial
            return tracker.effective_sel_prev()

        return provide

    def _bumped_provider(self, bump: SelectivityTracker) -> SelProvider:
        step = self._gradient_step

        def provide(
            tracker: SelectivityTracker, new_points: int, space_points: int
        ) -> float:
            base = (
                tracker.initial
                if tracker.stages_observed == 0 and not tracker.has_prior
                else tracker.effective_sel_prev()
            )
            if tracker is bump:
                return min(base + step, 1.0)
            return base

        return provide

    def _covariance(
        self, a: SelectivityTracker, b: SelectivityTracker
    ) -> float:
        sa = a.per_stage_selectivities()
        sb = b.per_stage_selectivities()
        n = min(len(sa), len(sb))
        if n < 2:
            return 0.0
        return float(np.cov(sa[-n:], sb[-n:], ddof=1)[0, 1])

    def _stage_cost_with_margin(
        self, plan: StagedPlan, fraction: float
    ) -> float:
        mean_provider = self._mean_provider()
        mu = plan.predict_stage(fraction, mean_provider)
        if self.d_alpha == 0:
            return mu
        trackers = plan.trackers()
        # Numerical gradient of QCOST w.r.t. each operator's selectivity.
        grads: list[float] = []
        for tracker in trackers:
            bumped = plan.predict_stage(fraction, self._bumped_provider(tracker))
            grads.append((bumped - mu) / self._gradient_step)
        variance = 0.0
        for u, tu in enumerate(trackers):
            # Diagonal: the SRS selectivity variance at this stage size.
            points = self._candidate_points(plan, fraction, tu)
            var_u = (
                tu.variance(points, self._space_points(plan, tu))
                if tu.stages_observed and points > 0
                else 0.0
            )
            variance += grads[u] * grads[u] * var_u
            for v in range(u + 1, len(trackers)):
                cov = self._covariance(tu, trackers[v])
                variance += 2.0 * grads[u] * grads[v] * cov
        variance = max(variance, 0.0)
        return mu + self.d_alpha * math.sqrt(variance)

    @staticmethod
    def _space_points(plan: StagedPlan, tracker: SelectivityTracker) -> int:
        for term in plan.terms:
            for node in term.root.iter_nodes():
                if node.tracker is tracker:
                    return node.space_points()
        raise TimeControlError(f"tracker {tracker.label!r} not in plan")

    @staticmethod
    def _candidate_points(
        plan: StagedPlan, fraction: float, tracker: SelectivityTracker
    ) -> int:
        for term in plan.terms:
            for node in term.root.iter_nodes():
                if node.tracker is tracker:
                    from repro.engine.nodes import PredictContext

                    ctx = PredictContext(
                        fraction, SingleInterval._mean_provider()
                    )
                    return max(int(node._new_points_predicted(ctx)), 1)
        return 1

    def choose_fraction(
        self, plan: StagedPlan, remaining_seconds: float, stage: int
    ) -> float | None:
        budget = self._budget(plan, remaining_seconds)
        counter = _BisectionCounter()
        fraction = determine_fraction(
            cost=lambda f: self._stage_cost_with_margin(plan, f),
            budget_seconds=budget,
            min_fraction=plan.min_feasible_fraction(),
            max_fraction=plan.max_remaining_fraction(),
            epsilon_ratio=self.epsilon_ratio,
            observer=counter,
        )
        return self._trace_choice(
            plan, stage, fraction, budget, counter.iterations
        )

    def describe(self) -> str:
        return f"SingleInterval(d_alpha={self.d_alpha})"


@dataclass
class FixedFractionHeuristic(TimeControlStrategy):
    """Spend share γ of the remaining quota per stage (the heuristic).

    Stage 1 is a fixed probe (``probe_fraction`` of each relation); later
    stages size themselves from the measured seconds-per-block of the stages
    so far. No statistical risk control at all — the comparison point for
    ablation A1.
    """

    gamma: float = 0.5
    probe_fraction: float = 0.01
    _seconds_per_block: float | None = field(default=None, repr=False)
    _spent: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.gamma <= 1:
            raise TimeControlError(f"gamma must be in (0,1], got {self.gamma}")
        if not 0 < self.probe_fraction <= 1:
            raise TimeControlError("probe_fraction must be in (0,1]")

    def note_stage(self, seconds: float, blocks: int) -> None:
        """Feed back one executed stage (the executor calls this)."""
        if blocks <= 0 or seconds <= 0:
            return
        self._spent += seconds
        total_blocks = blocks if self._seconds_per_block is None else None
        if total_blocks is not None:
            self._seconds_per_block = seconds / blocks
        else:
            # Exponentially smoothed update favouring recent stages.
            self._seconds_per_block = (
                0.5 * self._seconds_per_block + 0.5 * seconds / blocks
            )

    def choose_fraction(
        self, plan: StagedPlan, remaining_seconds: float, stage: int
    ) -> float | None:
        fraction = self._choose(plan, remaining_seconds)
        return self._trace_choice(plan, stage, fraction, remaining_seconds)

    def _choose(self, plan: StagedPlan, remaining_seconds: float) -> float | None:
        min_f = plan.min_feasible_fraction()
        max_f = plan.max_remaining_fraction()
        if min_f <= 0 or max_f <= 0:
            return None
        if self._seconds_per_block is None:
            return min(max(self.probe_fraction, min_f), max_f)
        target = self.gamma * remaining_seconds
        blocks_affordable = target / self._seconds_per_block
        total_blocks = sum(s.relation.block_count for s in plan.scans)
        if total_blocks == 0:
            return None
        f = blocks_affordable / total_blocks
        if f < min_f:
            # Cannot afford even one block at the target share — but if the
            # *whole* remaining time affords the minimum stage, take it.
            if remaining_seconds / self._seconds_per_block >= 1.0:
                return min_f
            return None
        return min(f, max_f)

    def describe(self) -> str:
        return f"FixedFractionHeuristic(gamma={self.gamma})"
