"""Sample-Size-Determine — the bisection of Figure 3.4.

Given the amount of time ``T_i`` available for the stage and a monotone
stage-cost function ``cost(f)`` (built by the strategy from the adaptive
``QCOST`` formulas), find the sample fraction whose predicted cost is as
close to ``T_i`` as possible without exceeding it:

    while |μ_t − T_i| > ε:
        if μ_t < T_i: low := f else high := f
        f := (low + high) / 2

``ε`` is "a system-defined constant denoting the tolerable error in choosing
a μ_t as close to T_i as possible" — we express it as a fraction of ``T_i``.

The bisection is wrapped with the practical boundary cases the paper's
prototype needed: the smallest useful fraction (one new disk block), the
largest (everything still unsampled — if that is affordable, take it all and
finish the relation), and infeasibility (even one block would overspend —
the stage is not started and the remaining quota is wasted, Section 5's
"time left which is too small to start another stage").
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TimeControlError

CostFunction = Callable[[float], float]

BisectionObserver = Callable[[int, float, float], None]
"""Per-iteration hook: (iteration number, candidate fraction, predicted cost)."""


def determine_fraction(
    cost: CostFunction,
    budget_seconds: float,
    min_fraction: float,
    max_fraction: float,
    epsilon_ratio: float = 0.02,
    max_iterations: int = 48,
    observer: BisectionObserver | None = None,
) -> float | None:
    """Largest fraction whose predicted cost fits ``budget_seconds``.

    Returns ``None`` when no feasible stage exists (empty bounds or even the
    minimum fraction overruns the budget). ``observer`` (if given) is called
    once per bisection iteration — the tracing layer uses it to report how
    hard Figure 3.4's loop worked for the chosen fraction.
    """
    if epsilon_ratio <= 0:
        raise TimeControlError("epsilon_ratio must be positive")
    if budget_seconds <= 0:
        return None
    if min_fraction <= 0 or max_fraction <= 0 or min_fraction > max_fraction:
        return None
    if cost(min_fraction) > budget_seconds:
        return None
    if cost(max_fraction) <= budget_seconds:
        return max_fraction
    epsilon = epsilon_ratio * budget_seconds
    low, high = min_fraction, max_fraction
    f = 0.5 * (low + high)
    for iteration in range(1, max_iterations + 1):
        mu = cost(f)
        if observer is not None:
            observer(iteration, f, mu)
        # Figure 3.4's loop condition: stop once μ_t is within ε of T_i —
        # on either side. Accepting a predicted cost slightly above the
        # budget is what makes d_β (not the bisection) carry the risk
        # control, and why the risk sits near 50% at d_β = 0 (Section 5.A).
        if abs(mu - budget_seconds) <= epsilon:
            return f
        if mu < budget_seconds:
            low = f
        else:
            high = f
        f = 0.5 * (low + high)
    return low
