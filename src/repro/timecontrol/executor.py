"""The time-constrained query evaluation algorithm (Figure 3.1).

The executor runs the paper's while-loop: revise selectivities (implicit in
the trackers), determine the stage's sample fraction, draw and evaluate the
new sample blocks, recompute the estimate, and repeat until the stopping
criterion fires. Two deadline behaviours:

* ``measure_overspend=True`` (default, the experiments' mode): like ERAM,
  "does not abort a query (stage) … when the query overspends", so the
  overspent time — "the time needed to complete the very last stage that was
  aborted" — can be measured and reported (Section 5). The overspending
  stage's results are *not* part of the reported estimate.
* ``measure_overspend=False`` with a hard criterion: the timer interrupt is
  armed and a stage crossing the deadline is killed mid-flight via
  :class:`~repro.errors.QuotaExpired`; the answer is whatever the last
  completed stage produced — the deployment behaviour of a hard real-time
  database.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.costmodel import steps as step_names
from repro.engine.plan import StagedPlan
from repro.errors import (
    QuotaExpired,
    SamplingExhausted,
    StorageError,
    TimeControlError,
)
from repro.estimation.estimate import Estimate
from repro.faults.events import FaultSalvaged
from repro.faults.injector import FaultRecord
from repro.observability.trace import (
    DeadlineAbort,
    QueryEnd,
    QueryStart,
    StageEnd,
    StageStart,
    TraceSink,
)
from repro.timecontrol.stopping import HardDeadline, StopState, StoppingCriterion
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    TimeControlStrategy,
)
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind


@dataclass
class StageReport:
    """One attempted stage of a run."""

    index: int
    fraction: float
    started_at: float
    duration: float
    blocks_read: int
    new_points: int
    new_outputs: int
    completed_in_time: bool
    aborted_mid_stage: bool
    estimate: Estimate | None


@dataclass
class RunReport:
    """Full record of one time-constrained COUNT evaluation.

    ``estimate`` is the answer under hard-deadline semantics: the estimate
    after the last stage that finished within the quota (``None`` if not
    even stage 1 finished in time). ``estimate_with_overrun`` additionally
    incorporates an overspent final stage, which is what a soft-deadline
    client would receive.
    """

    quota: float
    started_at: float
    aggregate: str = "count"
    stages: list[StageReport] = field(default_factory=list)
    estimate: Estimate | None = None
    estimate_with_overrun: Estimate | None = None
    termination: str = ""
    peak_temp_tuples: int = 0
    faults: list[FaultRecord] = field(default_factory=list)

    # -- derived measures (the paper's table columns) -------------------
    @property
    def stages_completed_in_time(self) -> int:
        """The paper's "stages" column (completed within the quota)."""
        return sum(1 for s in self.stages if s.completed_in_time)

    @property
    def overspent(self) -> bool:
        """Did any stage run past the deadline ("risk" numerator)?"""
        return any(not s.completed_in_time for s in self.stages)

    @property
    def degraded(self) -> bool:
        """Did the run finish early because injected faults exhausted it?"""
        return self.termination == "degraded"

    @property
    def faulted(self) -> bool:
        """Were any faults injected and salvaged during the run?"""
        return bool(self.faults)

    @property
    def wasted_seconds(self) -> float:
        """Charged time spent on stage attempts discarded after a fault."""
        return sum(f.wasted_seconds for f in self.faults)

    @property
    def overspend_seconds(self) -> float:
        """Seconds past the quota spent finishing the aborted stage (ovsp)."""
        if math.isinf(self.quota):
            return 0.0
        end = (
            self.started_at
            + sum(s.duration for s in self.stages)
            + self.wasted_seconds
        )
        return max(end - (self.started_at + self.quota), 0.0)

    @property
    def utilization(self) -> float:
        """Share of the quota spent on stages that completed in time."""
        if math.isinf(self.quota) or self.quota <= 0:
            return 1.0
        useful = sum(s.duration for s in self.stages if s.completed_in_time)
        return min(useful / self.quota, 1.0)

    @property
    def blocks_within_quota(self) -> int:
        """Disk blocks evaluated by in-time stages (the "blocks" column)."""
        return sum(s.blocks_read for s in self.stages if s.completed_in_time)

    @property
    def total_blocks(self) -> int:
        return sum(s.blocks_read for s in self.stages)


Checkpoint = Callable[[RunReport], bool]
"""Stage-boundary hook: return ``True`` to suspend the run (see
:meth:`TimeConstrainedExecutor.run`). Called with the partial report
*between* stages only — never mid-stage — and only after at least one
stage has completed, so a suspended run always has a consistent
last-completed-stage estimate to fall back on."""


@dataclass
class SuspendedRun:
    """A run paused at a stage boundary, resumable bit-identically.

    Produced by :meth:`TimeConstrainedExecutor.run` when its ``checkpoint``
    callback asks to suspend. Everything the continuation needs is here:
    the partial :class:`RunReport` (stages completed so far, all still
    charged), the absolute ``deadline`` (queue wait while suspended keeps
    eating the budget — the paper's time-quota semantics applied to
    preemption), the estimator/tracker state as a plan snapshot ``token``
    (:meth:`~repro.engine.plan.StagedPlan.snapshot` — restored on resume so
    nothing that happened while parked can leak into the continuation), and
    the consumed-budget accounting. Suspension itself charges nothing and
    draws no randomness, which is what makes a suspended-then-resumed run
    bit-identical to an uninterrupted one when the clock did not move in
    between.
    """

    report: RunReport
    deadline: float
    token: dict
    estimates: list[Estimate]
    stage_retries: int
    consumed: float
    suspended_at: float

    @property
    def stages_completed(self) -> int:
        """Stages banked before suspension (the resumable prefix)."""
        return len(self.report.stages)

    def residual_budget(self, now: float) -> float:
        """Budget left if resumed at ``now`` (the deadline is absolute)."""
        return max(self.deadline - now, 0.0)


class TimeConstrainedExecutor:
    """Runs one staged plan under a quota with a strategy and a criterion."""

    def __init__(
        self,
        plan: StagedPlan,
        strategy: TimeControlStrategy,
        stopping: StoppingCriterion | None = None,
        measure_overspend: bool = True,
        max_stages: int = 64,
        sink: TraceSink | None = None,
        max_stage_retries: int = 3,
    ) -> None:
        self.plan = plan
        self.strategy = strategy
        self.stopping = stopping if stopping is not None else HardDeadline()
        self.measure_overspend = measure_overspend
        self.max_stages = max_stages
        self.max_stage_retries = max_stage_retries
        # Default to the plan's sink so one wiring point traces the whole run.
        self.sink: TraceSink = sink if sink is not None else plan.sink

    def run(
        self, quota: float, checkpoint: Checkpoint | None = None
    ) -> RunReport | SuspendedRun:
        """Evaluate the plan's COUNT within ``quota`` seconds.

        Without ``checkpoint`` the return value is always a terminal
        :class:`RunReport` (the pre-existing contract, bit-for-bit).
        With a ``checkpoint`` callback the executor becomes preemptible:
        the callback is consulted at every stage boundary (after at least
        one stage completed) and a ``True`` answer suspends the run —
        the method then returns a :class:`SuspendedRun` instead of a
        report, to be continued later with :meth:`resume`. Suspension
        happens only between stages, charges nothing, and consumes no
        randomness, so it never perturbs the estimate.
        """
        if quota <= 0:
            raise TimeControlError(f"quota must be positive: {quota}")
        clock = self.plan.charger.clock
        start = clock.now()
        report = RunReport(
            quota=quota,
            started_at=start,
            aggregate=self.plan.aggregate.kind,
        )
        self.sink.emit(
            QueryStart(
                quota=quota,
                aggregate=self.plan.aggregate.kind,
                strategy=self.strategy.describe(),
                stopping=type(self.stopping).__name__,
                clock=start,
            )
        )
        return self._drive(
            report,
            deadline=start + quota,
            estimates=[],
            stage_retries=0,
            checkpoint=checkpoint,
            consumed=0.0,
        )

    def resume(
        self,
        suspended: SuspendedRun,
        checkpoint: Checkpoint | None = None,
    ) -> RunReport | SuspendedRun:
        """Continue a :class:`SuspendedRun` against its original deadline.

        The plan is rolled back to the suspension snapshot first (a no-op
        when nothing touched it while parked — the normal case — but a
        hard guarantee that foreign state cannot leak in), the deadline is
        re-armed, and the stage loop picks up exactly where it stopped:
        same stage numbering, same estimator history, same RNG stream
        position. Time that passed while suspended is already gone from
        the budget (the deadline is absolute), mirroring how queue wait is
        charged before the first dispatch. May suspend again if
        ``checkpoint`` asks to.
        """
        self.plan.restore(suspended.token)
        return self._drive(
            suspended.report,
            deadline=suspended.deadline,
            estimates=suspended.estimates,
            stage_retries=suspended.stage_retries,
            checkpoint=checkpoint,
            consumed=suspended.consumed,
        )

    def _drive(
        self,
        report: RunReport,
        deadline: float,
        estimates: list[Estimate],
        stage_retries: int,
        checkpoint: Checkpoint | None,
        consumed: float,
    ) -> RunReport | SuspendedRun:
        """Arm the deadline, run the stage loop, finalize or suspend."""
        charger: CostCharger = self.plan.charger
        clock = charger.clock
        segment_start = clock.now()
        live_hard = self.stopping.hard and not self.measure_overspend
        # A resumed run whose budget evaporated in the queue skips arming:
        # the loop terminates immediately with the banked estimate.
        if math.isfinite(deadline) and deadline >= segment_start:
            charger.arm(deadline, hard=live_hard)
        suspend = False
        try:
            suspend, stage_retries = self._loop(
                report, deadline, estimates, stage_retries, checkpoint
            )
        finally:
            charger.disarm()
        if suspend:
            return SuspendedRun(
                report=report,
                deadline=deadline,
                token=self.plan.snapshot(),
                estimates=estimates,
                stage_retries=stage_retries,
                consumed=consumed + (clock.now() - segment_start),
                suspended_at=clock.now(),
            )
        report.peak_temp_tuples = self.plan.spool.peak_tuples
        if report.estimate_with_overrun is None:
            report.estimate_with_overrun = report.estimate
        if not report.termination:
            report.termination = "deadline"
        self.sink.emit(
            QueryEnd(
                termination=report.termination,
                stages_completed=report.stages_completed_in_time,
                estimate_value=(
                    report.estimate.value if report.estimate else None
                ),
                estimate_variance=(
                    report.estimate.variance if report.estimate else None
                ),
                elapsed_seconds=consumed + (clock.now() - segment_start),
            )
        )
        return report

    def _loop(
        self,
        report: RunReport,
        deadline: float,
        estimates: list[Estimate],
        stage_retries: int,
        checkpoint: Checkpoint | None,
    ) -> tuple[bool, int]:
        """The Figure 3.1 while-loop; ``(True, retries)`` = suspend."""
        clock = self.plan.charger.clock
        injector = self.plan.injector
        while len(report.stages) < self.max_stages:
            # The preemption point: between stages only, never before the
            # first stage has banked an estimate, and costing nothing.
            if (
                checkpoint is not None
                and report.stages
                and checkpoint(report)
            ):
                return True, stage_retries
            now = clock.now()
            remaining = deadline - now
            if remaining <= 0:
                report.termination = "deadline"
                break
            if self.plan.all_exhausted():
                report.termination = "exhausted"
                break
            fraction = self.strategy.choose_fraction(
                self.plan, remaining, self.plan.stages_completed + 1
            )
            if fraction is None:
                report.termination = "no_feasible_stage"
                break
            self.sink.emit(
                StageStart(
                    stage=self.plan.stages_completed + 1,
                    fraction=fraction,
                    remaining_seconds=remaining,
                    clock=now,
                )
            )
            # Snapshots are taken only when faults can actually fire, so
            # unfaulted runs pay nothing and stay bit-identical.
            token = None
            if injector is not None:
                injector.begin_stage(self.plan.stages_completed + 1)
                token = self.plan.snapshot()
            attempt_started = clock.now()
            try:
                stage_report = self._run_stage(fraction, deadline)
            except (StorageError, SamplingExhausted) as fault:
                if token is None:
                    raise
                salvaged = self._salvage(
                    report, fault, token, attempt_started, stage_retries
                )
                if not salvaged:
                    report.termination = "degraded"
                    break
                stage_retries += 1
                continue
            stage_retries = 0
            report.stages.append(stage_report)
            if stage_report.aborted_mid_stage:
                report.termination = "interrupted"
                self.sink.emit(
                    DeadlineAbort(
                        stage=stage_report.index,
                        deadline=deadline,
                        clock=clock.now(),
                    )
                )
                self._emit_stage_end(stage_report)
                break
            if isinstance(self.strategy, FixedFractionHeuristic):
                self.strategy.note_stage(
                    stage_report.duration, stage_report.blocks_read
                )
            estimate = self.plan.estimate()
            stage_report.estimate = estimate
            estimates.append(estimate)
            self._emit_stage_end(stage_report)
            if stage_report.completed_in_time:
                report.estimate = estimate
            else:
                report.estimate_with_overrun = estimate
                report.termination = "deadline"
                break
            self._notify_stage_duration(stage_report.duration)
            state = StopState(
                stage=stage_report.index,
                remaining_seconds=deadline - clock.now(),
                estimate=estimate,
                estimate_history=estimates,
                elapsed_seconds=clock.now() - report.started_at,
            )
            if self.stopping.should_stop(state):
                report.termination = (
                    "deadline"
                    if state.remaining_seconds <= 0
                    else "stopping_criterion"
                )
                break
        else:
            report.termination = "max_stages"
        return False, stage_retries

    def _salvage(
        self,
        report: RunReport,
        fault: Exception,
        token: dict,
        attempt_started: float,
        stage_retries: int,
    ) -> bool:
        """Discard the faulted stage attempt and decide whether to retry.

        The plan rolls back to its pre-stage logical state (samplers,
        trackers, runs, moments) while the clock keeps every second the
        wasted attempt charged — faults cost time but never corrupt the
        estimate. Returns ``True`` to retry the stage, ``False`` to finish
        the run with the last consistent estimate (``degraded``).
        """
        clock = self.plan.charger.clock
        wasted = clock.now() - attempt_started
        stage_index = self.plan.stages_completed + 1
        self.plan.restore(token)
        plan = self.plan.injector.plan
        retry = (
            plan.salvage == "continue"
            and stage_retries + 1 < self.max_stage_retries
        )
        record = FaultRecord(
            stage=stage_index,
            fault_kind=getattr(fault, "fault_kind", "storage_error"),
            message=str(fault),
            relation=getattr(fault, "relation", None),
            block_id=getattr(fault, "block_id", None),
            wasted_seconds=wasted,
            action="retry" if retry else "finish",
        )
        report.faults.append(record)
        self.sink.emit(
            FaultSalvaged(
                stage=stage_index,
                fault_kind=record.fault_kind,
                wasted_seconds=wasted,
                action=record.action,
                clock=clock.now(),
            )
        )
        return retry

    def _emit_stage_end(self, stage: StageReport) -> None:
        self.sink.emit(
            StageEnd(
                stage=stage.index,
                fraction=stage.fraction,
                duration=stage.duration,
                blocks_read=stage.blocks_read,
                new_points=stage.new_points,
                new_outputs=stage.new_outputs,
                completed_in_time=stage.completed_in_time,
                aborted_mid_stage=stage.aborted_mid_stage,
                estimate_value=(
                    stage.estimate.value if stage.estimate else None
                ),
                estimate_variance=(
                    stage.estimate.variance if stage.estimate else None
                ),
            )
        )

    def _notify_stage_duration(self, seconds: float) -> None:
        """Feed stage durations to criteria that model future stages."""
        from repro.timecontrol.stopping import AnyOf, ValueFunction

        criteria = (
            self.stopping.criteria
            if isinstance(self.stopping, AnyOf)
            else (self.stopping,)
        )
        for criterion in criteria:
            if isinstance(criterion, ValueFunction):
                criterion.note_stage_duration(seconds)

    def _run_stage(self, fraction: float, deadline: float) -> StageReport:
        charger = self.plan.charger
        clock = charger.clock
        stage_index = self.plan.stages_completed + 1
        started = clock.now()
        aborted = False
        blocks = 0
        new_points = 0
        new_outputs = 0
        try:
            with charger.measure() as overhead_meter:
                charger.charge(CostKind.STAGE_OVERHEAD, 1)
            self.plan.cost_model.observe(
                step_names.STAGE_OVERHEAD, [1.0], overhead_meter.elapsed
            )
            stats = self.plan.advance_stage(fraction)
            blocks = stats.blocks_read
            new_points = stats.new_points
            new_outputs = stats.new_outputs
            if self.plan.injector is not None:
                # An injected overrun lands after the stage's real work, so
                # the stage's results stay consistent; only its timing (and
                # thus completed_in_time below) absorbs the penalty.
                self.plan.injector.maybe_overrun(stage_index, charger)
        except QuotaExpired:
            aborted = True
        duration = clock.now() - started
        completed_in_time = (not aborted) and clock.now() <= deadline
        return StageReport(
            index=stage_index,
            fraction=fraction,
            started_at=started,
            duration=duration,
            blocks_read=blocks,
            new_points=new_points,
            new_outputs=new_outputs,
            completed_in_time=completed_in_time,
            aborted_mid_stage=aborted,
            estimate=None,
        )
