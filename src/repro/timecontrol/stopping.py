"""Stopping criteria (Section 3.2).

Two families, mirroring the paper:

* **Time-based.** :class:`HardDeadline` — the timer interrupt aborts the
  running stage the moment the quota is spent (the criterion the prototype
  uses, "because of its simplicity and wide applicability in the real-time
  database environment"). :class:`SoftDeadline` — the deadline is only
  checked between stages, which is what Figure 3.1's while-loop literally
  implements ("the algorithm shown in Figure 3.1 actually implements a soft
  time constraint").
* **Precision-based.** :class:`ErrorConstrained` — stop once the estimate's
  relative confidence-interval half-width reaches a target, or when the
  estimate has stopped improving ("whenever the estimation does not improve
  'much' over the last few stages").

:class:`AnyOf` combines criteria ("combinations of both types of criteria
are also possible").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import TimeControlError
from repro.estimation.estimate import Estimate


@dataclass
class StopState:
    """What a criterion may inspect at the end of a stage."""

    stage: int
    remaining_seconds: float
    estimate: Estimate | None
    estimate_history: list[Estimate] = field(default_factory=list)
    elapsed_seconds: float = 0.0


class StoppingCriterion:
    """Base class; subclasses override :meth:`should_stop`.

    ``hard`` declares whether the executor arms the charger's mid-stage
    timer interrupt (True) or only checks between stages (False).
    """

    hard: bool = False

    def should_stop(self, state: StopState) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class HardDeadline(StoppingCriterion):
    """Abort mid-stage at the quota — the paper's chosen criterion."""

    hard: bool = field(default=True, init=False)

    def should_stop(self, state: StopState) -> bool:
        return state.remaining_seconds <= 0.0


@dataclass
class SoftDeadline(StoppingCriterion):
    """Check the quota only between stages (Figure 3.1 as written)."""

    hard: bool = field(default=False, init=False)

    def should_stop(self, state: StopState) -> bool:
        return state.remaining_seconds <= 0.0


@dataclass
class ErrorConstrained(StoppingCriterion):
    """Stop at a target precision or when improvement stalls.

    ``target_relative_halfwidth`` — stop once the CI half-width divided by
    the estimate is at or below this (checked at ``confidence`` level).
    ``stall_stages`` / ``stall_tolerance`` — alternatively stop when the
    estimate changed by less than ``stall_tolerance`` (relative) over the
    last ``stall_stages`` stages.
    """

    target_relative_halfwidth: float = 0.1
    confidence: float = 0.95
    stall_stages: int = 0
    stall_tolerance: float = 0.01
    hard: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.target_relative_halfwidth <= 0:
            raise TimeControlError("target half-width must be positive")
        if not 0 < self.confidence < 1:
            raise TimeControlError("confidence must be in (0,1)")

    def should_stop(self, state: StopState) -> bool:
        est = state.estimate
        if est is None:
            return False
        if est.exact:
            return True
        if (
            est.value > 0
            and est.relative_error_bound(self.confidence)
            <= self.target_relative_halfwidth
        ):
            return True
        if self.stall_stages > 1 and len(state.estimate_history) >= self.stall_stages:
            window = state.estimate_history[-self.stall_stages :]
            lo = min(e.value for e in window)
            hi = max(e.value for e in window)
            center = max(abs(hi), abs(lo), 1e-12)
            if (hi - lo) / center <= self.stall_tolerance:
                return True
        return False


@dataclass
class ValueFunction(StoppingCriterion):
    """Soft deadline via a completion-time value function (Section 3.2).

    "By defining a value function for the completion time of a query, the
    system decides when to stop processing the query to get a higher
    value." The utility of answering at time ``t`` with the current
    precision is modelled as

        U(t) = value(t) · (1 − min(relative CI half-width, 1))

    and the criterion stops when running one more stage (projected to last
    as long as the previous one, shrinking the half-width by the usual
    ``sqrt(t/(t+Δ))`` sampling factor) is expected to *lower* the utility —
    i.e. the time-value lost exceeds the precision gained.

    ``value`` maps elapsed seconds to a non-negative worth; the classic
    soft-deadline shapes are a plateau followed by linear decay, e.g.
    ``lambda t: max(0.0, 1.0 - max(t - soft, 0.0) / grace)``.
    """

    value: "Callable[[float], float]" = None  # type: ignore[assignment]
    confidence: float = 0.95
    hard: bool = field(default=False, init=False)
    _last_stage_seconds: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.value is None:
            raise TimeControlError("ValueFunction needs a value callable")
        if not 0 < self.confidence < 1:
            raise TimeControlError("confidence must be in (0,1)")

    def note_stage_duration(self, seconds: float) -> None:
        """The executor reports each completed stage's duration here."""
        if seconds > 0:
            self._last_stage_seconds = seconds

    def should_stop(self, state: StopState) -> bool:
        est = state.estimate
        if est is None:
            return False
        if est.exact:
            return True
        elapsed = max(getattr(state, "elapsed_seconds", 0.0), 1e-9)
        halfwidth = min(est.relative_error_bound(self.confidence), 1.0)
        utility_now = max(self.value(elapsed), 0.0) * (1.0 - halfwidth)
        step = self._last_stage_seconds or elapsed
        projected_time = elapsed + step
        shrink = (elapsed / projected_time) ** 0.5
        utility_next = max(self.value(projected_time), 0.0) * (
            1.0 - halfwidth * shrink
        )
        return utility_next <= utility_now


@dataclass
class AnyOf(StoppingCriterion):
    """Stop when any sub-criterion fires; hard if any sub-criterion is."""

    criteria: tuple[StoppingCriterion, ...]

    def __init__(self, criteria: Sequence[StoppingCriterion]) -> None:
        if not criteria:
            raise TimeControlError("AnyOf needs at least one criterion")
        self.criteria = tuple(criteria)
        self.hard = any(c.hard for c in self.criteria)

    def should_stop(self, state: StopState) -> bool:
        return any(c.should_stop(state) for c in self.criteria)

    def describe(self) -> str:
        return " | ".join(c.describe() for c in self.criteria)


def unlimited_quota() -> float:
    """A quota for purely error-constrained runs (no time limit)."""
    return math.inf
