"""The fixpoint rewrite driver — phase 2 of the three-phase planner.

Phase 1 is the logical IR itself (:mod:`repro.relational.expression` trees
with a canonical form); phase 3 is physical lowering
(:class:`repro.engine.physical.PhysicalPlanBuilder`). This module sits
between them: it runs a rule set over the tree bottom-up until no rule
fires, recording every application for ``Database.explain`` and the trace
stream.

Determinism contract: given the same expression, catalog, and hint state,
the driver visits nodes in the same order, tries rules in the same order,
and therefore produces the same optimized tree and the same application
log. There is no randomness and no wall-clock dependence anywhere in the
planner — a rewritten query is exactly as replayable as a verbatim one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.errors import ExpressionError
from repro.planner import cache as plan_cache
from repro.planner.rules import (
    HintProvider,
    JoinChainReorder,
    RewriteContext,
    Rule,
    RuleApplication,
    default_rules,
    reorder_is_safe,
)
from repro.relational.expression import (
    Difference,
    Expression,
    Intersect,
    Join,
    Project,
    RelationRef,
    Select,
    Union,
)

MAX_PASSES = 32
"""Fixpoint safety valve: the rule set converges in a handful of passes on
any realistic tree; hitting this bound means a rule pair oscillates and is
a planner bug, reported loudly rather than looped forever."""


def _rebuild(node: Expression, children: tuple[Expression, ...]) -> Expression:
    """Copy ``node`` over new children (identity when nothing changed)."""
    if all(new is old for new, old in zip(children, node.children())):
        return node
    if isinstance(node, Select):
        return Select(children[0], node.predicate)
    if isinstance(node, Project):
        return Project(children[0], node.attrs)
    if isinstance(node, Join):
        return Join(children[0], children[1], node.on)
    if isinstance(node, (Union, Intersect, Difference)):
        return type(node)(children[0], children[1])
    raise ExpressionError(f"cannot rebuild node {type(node).__name__}")


def _apply_once(
    node: Expression,
    rules: list[Rule],
    ctx: RewriteContext,
    log: list[RuleApplication],
) -> Expression:
    """One bottom-up pass: rewrite children first, then try rules here.

    At each node the first matching rule wins and the pass moves on; the
    next pass revisits the whole tree, so rules enabled by another rule's
    output (fuse, then push) fire on the following iteration.
    """
    if not isinstance(node, RelationRef):
        children = tuple(
            _apply_once(child, rules, ctx, log) for child in node.children()
        )
        node = _rebuild(node, children)
    for rule in rules:
        replacement = rule.apply(node, ctx)
        if replacement is not None and replacement != node:
            log.append(
                RuleApplication(
                    rule=rule.name, before=str(node), after=str(replacement)
                )
            )
            return replacement
    return node


def optimize_expression(
    expr: Expression,
    catalog: Catalog,
    hint: HintProvider | None = None,
    rules: list[Rule] | None = None,
    max_passes: int = MAX_PASSES,
) -> tuple[Expression, tuple[RuleApplication, ...]]:
    """Rewrite ``expr`` to fixpoint; returns (optimized, applications).

    ``hint`` is an optional prestored-selectivity callable (see
    :class:`repro.planner.rules.RewriteContext`); it sharpens
    :class:`~repro.planner.rules.JoinChainReorder`'s cardinality estimates
    but is never required. The reorder rule is dropped up front whenever
    :func:`~repro.planner.rules.reorder_is_safe` rejects the query (column
    order observable through set operations or ``_r`` renames).
    """
    if rules is None:
        rules = default_rules()
    if any(isinstance(r, JoinChainReorder) for r in rules):
        if not reorder_is_safe(expr, catalog):
            rules = [r for r in rules if not isinstance(r, JoinChainReorder)]
    ctx = RewriteContext(catalog, hint)
    log: list[RuleApplication] = []
    current = expr
    for _ in range(max_passes):
        rewritten = _apply_once(current, rules, ctx, log)
        if rewritten == current:
            return current, tuple(log)
        current = rewritten
    raise ExpressionError(
        f"optimizer did not converge within {max_passes} passes on "
        f"{expr.canonical_str()!r}; last form {current.canonical_str()!r}"
    )


@dataclass(frozen=True)
class PlannedQuery:
    """Outcome of logical planning: the tree to lower, and how it got there."""

    expression: Expression
    applications: tuple[RuleApplication, ...]
    cache_hit: bool


def plan_logical(
    expr: Expression,
    catalog: Catalog,
    hint: HintProvider | None = None,
) -> PlannedQuery:
    """Optimize ``expr``, consulting the process-wide plan cache.

    Caching is restricted to purely algebraic planning: when a prestored
    ``hint`` callable is present the rewrite outcome depends on statistics
    state that is not cheaply fingerprintable, so the cache is bypassed and
    the query is planned fresh (a cache hit must be indistinguishable from
    fresh planning — determinism beats reuse).
    """
    if hint is not None:
        optimized, applications = optimize_expression(expr, catalog, hint)
        return PlannedQuery(optimized, applications, cache_hit=False)
    key = plan_cache.cache_key(expr, catalog)
    cached = plan_cache.lookup(key)
    if cached is not None:
        return PlannedQuery(cached[0], cached[1], cache_hit=True)
    optimized, applications = optimize_expression(expr, catalog)
    plan_cache.store(key, (optimized, applications))
    return PlannedQuery(optimized, applications, cache_hit=False)
