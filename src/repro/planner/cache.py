"""Process-wide logical-plan cache keyed by canonical IR identity.

Planning is pure tree rewriting and cheap, but the server executes the
same query shapes over and over (the paper's fixed-mix workload
assumption), and every :class:`~repro.core.session.QuerySession` plans at
construction time — including the never-run probe sessions admission
control prices requests with. Caching the logical phase makes repeat
planning O(hash).

The key is the query's :meth:`~repro.relational.expression.Expression.
structural_hash` — so ``A ∩ B`` and ``B ∩ A``, or differently-ordered but
equal selection formulas, share one entry — paired with a fingerprint of
the referenced base relations' cardinalities, because
:class:`~repro.planner.rules.JoinChainReorder` decides by estimated rows:
loading different data into the same catalog names must miss, not replay a
stale decision. Hint-dependent planning never touches the cache at all
(see :func:`repro.planner.rewrite.plan_logical`).
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.planner.rules import RuleApplication
from repro.relational.expression import Expression

PLAN_CACHE_MAXSIZE = 256

CacheKey = tuple[str, str]
CacheValue = tuple[Expression, tuple[RuleApplication, ...]]

_lock = threading.Lock()
_cache: "OrderedDict[CacheKey, CacheValue]" = OrderedDict()
_hits = 0
_misses = 0


@dataclass(frozen=True)
class PlanCacheInfo:
    """Counters in the style of ``functools.lru_cache``'s ``cache_info``."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


def cache_key(expr: Expression, catalog: Catalog) -> CacheKey:
    """(structural hash, base-relation size fingerprint) for ``expr``."""
    parts = []
    for name in sorted(set(expr.base_relations())):
        relation = catalog.get(name)
        parts.append(f"{name}:{relation.tuple_count}:{relation.block_count}")
    return expr.structural_hash(), ";".join(parts)


def lookup(key: CacheKey) -> CacheValue | None:
    """Cached planning outcome for ``key``, refreshing LRU recency."""
    global _hits, _misses
    with _lock:
        value = _cache.get(key)
        if value is None:
            _misses += 1
            return None
        _cache.move_to_end(key)
        _hits += 1
        return value


def store(key: CacheKey, value: CacheValue) -> None:
    """Insert a planning outcome, evicting the least recently used entry."""
    with _lock:
        _cache[key] = value
        _cache.move_to_end(key)
        while len(_cache) > PLAN_CACHE_MAXSIZE:
            _cache.popitem(last=False)


def _plan_cache_info() -> PlanCacheInfo:
    """Current hit/miss/size counters of the process-wide plan cache."""
    with _lock:
        return PlanCacheInfo(
            hits=_hits,
            misses=_misses,
            maxsize=PLAN_CACHE_MAXSIZE,
            currsize=len(_cache),
        )


def plan_cache_info() -> PlanCacheInfo:
    """Deprecated: use ``repro.caches.get("plans").info()``."""
    warnings.warn(
        "plan_cache_info() is deprecated; use "
        "repro.caches.get('plans').info() or repro.caches.info()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _plan_cache_info()


def invalidate_plan_cache_relation(name: str) -> int:
    """Drop every entry whose fingerprint references relation ``name``.

    Called on committed mutations (:meth:`repro.core.database.Database.
    append_rows` / ``drop_relation``). The size fingerprint already makes
    *grown* relations miss naturally, but a drop-and-recreate that lands on
    the same cardinalities would silently replay a
    :class:`~repro.planner.rules.JoinChainReorder` decision made for the
    old data — so mutations evict explicitly. Returns the eviction count.
    """
    evicted = 0
    with _lock:
        for key in list(_cache):
            fingerprint = key[1]
            if any(
                part.split(":", 1)[0] == name
                for part in fingerprint.split(";")
                if part
            ):
                del _cache[key]
                evicted += 1
    return evicted


def _clear_plan_cache() -> None:
    """Drop all entries and reset counters (tests; catalog reloads)."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def clear_plan_cache() -> None:
    """Deprecated: use ``repro.caches.get("plans").clear()``."""
    warnings.warn(
        "clear_plan_cache() is deprecated; use "
        "repro.caches.get('plans').clear() or repro.caches.clear()",
        DeprecationWarning,
        stacklevel=2,
    )
    _clear_plan_cache()
