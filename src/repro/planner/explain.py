"""Plan explanation — before/after trees with predicted stage costs.

``Database.explain(expr)`` builds two probe sessions over the same data —
one lowering the query verbatim, one through the optimizer — and renders
what the planner did: the logical trees, the rule applications, and the
cost model's price of the cheapest useful stage of each physical plan
(stage overhead + ``QCOST`` at the minimum feasible fraction, exactly the
number admission control rules on). Probe sessions are never run, so
explaining a query charges nothing to any clock.

:func:`predicted_stage_costs` is also the single pricing routine behind
:func:`repro.server.admission.minimum_stage_cost` — the server admits
against the plan it will actually execute, optimized or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.costmodel import steps as step_names
from repro.engine.nodes import PredictContext, StagedScan
from repro.planner.rules import RuleApplication
from repro.relational.expression import (
    Expression,
    Join,
    Project,
    RelationRef,
    Select,
)

if TYPE_CHECKING:
    from repro.engine.plan import StagedPlan


def _label(node: Expression) -> str:
    if isinstance(node, RelationRef):
        return node.name
    if isinstance(node, Select):
        return f"select [{node.predicate}]"
    if isinstance(node, Project):
        return f"project [{', '.join(node.attrs)}]"
    if isinstance(node, Join):
        pairs = ", ".join(f"{a}={b}" for a, b in node.on)
        return f"join [{pairs}]"
    return type(node).__name__.lower()


def render_tree(expr: Expression) -> str:
    """Box-drawing rendering of a logical expression tree."""
    lines: list[str] = []

    def visit(node: Expression, prefix: str, child_prefix: str) -> None:
        lines.append(prefix + _label(node))
        children = node.children()
        for i, child in enumerate(children):
            last = i == len(children) - 1
            visit(
                child,
                child_prefix + ("└─ " if last else "├─ "),
                child_prefix + ("   " if last else "│  "),
            )

    visit(expr, "", "")
    return "\n".join(lines)


def initial_selectivity_provider(tracker, new_points, space_points) -> float:
    """Initial/running-mean selectivity — no risk inflation for pricing.

    A warm-started tracker (synopsis prior, no stages yet) prices at its
    posterior mean, so admission control sees the cheaper plan the run will
    actually execute.
    """
    if tracker.stages_observed == 0 and not tracker.has_prior:
        return tracker.initial
    return tracker.effective_sel_prev()


@dataclass(frozen=True)
class NodeCost:
    """Predicted cost of one staged operator in the cheapest useful stage."""

    label: str
    seconds: float


@dataclass(frozen=True)
class PlanCosts:
    """Cost-model price of a plan's cheapest useful stage, itemized.

    ``fraction`` is the minimum feasible sample fraction (one new block on
    the smallest relation); ``qcost`` sums the per-node predictions (shared
    scans priced once); ``total`` adds the fixed stage overhead — the
    feasibility floor of :mod:`repro.server.admission`.
    """

    fraction: float
    stage_overhead: float
    qcost: float
    nodes: tuple[NodeCost, ...]

    @property
    def total(self) -> float:
        return self.stage_overhead + self.qcost


def predicted_stage_costs(plan: "StagedPlan") -> PlanCosts:
    """Price ``plan``'s cheapest useful stage with its own cost model.

    Uses initial selectivities (prestored hints when the plan has them,
    Figure 3.3's maximum otherwise) and itemizes per staged node. Pure
    prediction: nothing is charged, sampled, or mutated.
    """
    overhead = plan.cost_model.predict(step_names.STAGE_OVERHEAD, [1.0])
    fraction = plan.min_feasible_fraction()
    if fraction <= 0:  # nothing left to sample — only overhead remains
        return PlanCosts(0.0, overhead, 0.0, ())
    ctx = PredictContext(fraction, initial_selectivity_provider)
    for term in plan.terms:
        term.root.predict(ctx)
    nodes: list[NodeCost] = []
    seen: set[int] = set()
    for term in plan.terms:
        for node in term.root.iter_nodes():
            if id(node) in seen:
                continue
            seen.add(id(node))
            prediction = ctx.cached(node)
            if prediction is None:  # defensive: predict() visits every node
                continue
            label = (
                f"scan({node.relation.name})"
                if isinstance(node, StagedScan)
                else node.tracker.label
                if node.tracker is not None
                else type(node).__name__
            )
            nodes.append(NodeCost(label, prediction.seconds))
    return PlanCosts(fraction, overhead, ctx.total_seconds, tuple(nodes))


@dataclass(frozen=True)
class PlanExplanation:
    """What the planner did to one query, renderable for humans.

    ``before``/``after`` are the logical trees entering and leaving the
    optimizer; ``applications`` the rule log in firing order;
    ``before_costs``/``after_costs`` the cheapest-stage prices of the two
    physical plans. ``optimized`` is False when no rule fired (the trees
    coincide), and ``cache_hit`` reports whether the after-tree came from
    the process-wide plan cache.
    """

    before: Expression
    after: Expression
    applications: tuple[RuleApplication, ...]
    cache_hit: bool
    before_costs: PlanCosts
    after_costs: PlanCosts

    @property
    def optimized(self) -> bool:
        return bool(self.applications)

    @property
    def predicted_speedup(self) -> float:
        """Cheapest-stage price ratio, verbatim / optimized (≥1 is a win)."""
        if self.after_costs.total <= 0:
            return 1.0
        return self.before_costs.total / self.after_costs.total

    def render(self) -> str:
        out = ["== logical plan (as written) =="]
        out.append(render_tree(self.before))
        out.append(f"predicted minimum stage: {self.before_costs.total:.6f}s")
        for node in self.before_costs.nodes:
            out.append(f"  {node.label:<24} {node.seconds:.6f}s")
        out.append("")
        out.append("== rewrites ==")
        if self.applications:
            for app in self.applications:
                out.append(f"{app.rule}: {app.before}")
                out.append(f"{'':>{len(app.rule)}}  -> {app.after}")
        else:
            out.append("(no rule fired)")
        if self.cache_hit:
            out.append("(logical plan served from cache)")
        out.append("")
        out.append("== logical plan (optimized) ==")
        out.append(render_tree(self.after))
        out.append(f"predicted minimum stage: {self.after_costs.total:.6f}s")
        for node in self.after_costs.nodes:
            out.append(f"  {node.label:<24} {node.seconds:.6f}s")
        out.append("")
        out.append(f"predicted cheapest-stage speedup: {self.predicted_speedup:.2f}x")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def build_explanation(
    before_plan: "StagedPlan", after_plan: "StagedPlan"
) -> PlanExplanation:
    """Assemble a :class:`PlanExplanation` from two probe plans.

    ``before_plan`` lowered the query verbatim (``optimize=False``);
    ``after_plan`` went through the optimizer and carries the rule log.
    """
    return PlanExplanation(
        before=before_plan.expr,
        after=after_plan.optimized_expr,
        applications=after_plan.rule_applications,
        cache_hit=after_plan.plan_cache_hit,
        before_costs=predicted_stage_costs(before_plan),
        after_costs=predicted_stage_costs(after_plan),
    )
