"""The rule-based logical optimizer — phase 2 of query planning.

Planning a query is a three-phase pipeline:

1. **Logical IR** — the relational-algebra tree of
   :mod:`repro.relational.expression`, with a canonical, order-stable
   rendering (``canonical_str``/``structural_hash``) that gives
   semantically equal queries one identity;
2. **Rule-based optimization** (this package) — a fixpoint driver
   (:mod:`repro.planner.rewrite`) runs algebra-preserving rewrite rules
   (:mod:`repro.planner.rules`): selection fusion, predicate pushdown
   through joins and set operations, projection pruning, set-operation
   normalization, and selectivity-guided join-chain reordering. Outcomes
   of purely algebraic planning are memoized process-wide
   (:mod:`repro.planner.cache`);
3. **Physical lowering** — :class:`repro.engine.physical.PhysicalPlanBuilder`
   turns the (optimized or verbatim) tree into staged operator trees over
   shared sampling scans.

The optimizer is on by default and controlled like the kernels: per query
via ``QueryOptions(optimize=...)`` / ``open_session(optimize=...)``, or
process-wide via the ``REPRO_OPTIMIZE`` environment switch. With
``optimize=False`` the expression is lowered verbatim — bit-identical to
the engine before this package existed.

``Database.explain(expr)`` surfaces what the planner did as a
:class:`~repro.planner.explain.PlanExplanation`: before/after trees, the
rule-application log, and per-stage predicted costs of both physical
plans. The same pricing routine backs the server's admission control, so
requests are admitted against the plan that will actually run.
"""

from __future__ import annotations

from repro.core.switches import env_switch
from repro.planner.cache import (
    PlanCacheInfo,
    clear_plan_cache,
    plan_cache_info,
)
from repro.planner.explain import (
    NodeCost,
    PlanCosts,
    PlanExplanation,
    build_explanation,
    predicted_stage_costs,
    render_tree,
)
from repro.planner.rewrite import (
    PlannedQuery,
    optimize_expression,
    plan_logical,
)
from repro.planner.rules import (
    JoinChainReorder,
    PredicatePushdown,
    ProjectionPruning,
    RewriteContext,
    Rule,
    RuleApplication,
    SelectionFusion,
    SetOpNormalize,
    default_rules,
    reorder_is_safe,
)


def optimizer_enabled() -> bool:
    """Process-wide default for the logical optimizer (env-controlled).

    ``REPRO_OPTIMIZE=0`` (or ``false``/``off``/``no``) lowers every query
    verbatim; anything else — including the variable being unset — enables
    the optimizer. Read at session-construction time, so tests can flip it
    per query. Resolution lives in
    :func:`repro.core.switches.env_switch`, shared with ``REPRO_KERNELS``.
    """
    return env_switch("REPRO_OPTIMIZE", default=True)


__all__ = [
    "JoinChainReorder",
    "NodeCost",
    "PlanCacheInfo",
    "PlanCosts",
    "PlanExplanation",
    "PlannedQuery",
    "PredicatePushdown",
    "ProjectionPruning",
    "RewriteContext",
    "Rule",
    "RuleApplication",
    "SelectionFusion",
    "SetOpNormalize",
    "build_explanation",
    "clear_plan_cache",
    "default_rules",
    "optimize_expression",
    "optimizer_enabled",
    "plan_cache_info",
    "plan_logical",
    "predicted_stage_costs",
    "render_tree",
    "reorder_is_safe",
]
