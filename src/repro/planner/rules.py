"""Rewrite rules — the optimizer's algebra-preserving transformations.

Each rule is a small object with a ``name`` and an ``apply(node, ctx)``
method that either returns a rewritten replacement for *that node* or
``None`` (no match). Traversal, fixpoint iteration, and bookkeeping live in
:mod:`repro.planner.rewrite`; rules stay local and composable.

The correctness contract every rule must honour (property-tested in
``tests/test_planner_property.py``):

* **exact equality** — the rewritten tree evaluates to the same relation
  under :class:`~repro.relational.evaluator.ExactEvaluator` (for
  :class:`JoinChainReorder`, the same relation up to column order — see its
  docstring for why that is the one permitted relaxation and how it is
  gated);
* **schema preservation** — the output schema's name→type mapping is
  unchanged (and, for every rule but :class:`JoinChainReorder`, the
  attribute order too);
* **estimator neutrality** — the rewritten tree's ``COUNT``/``SUM``/``AVG``
  estimates stay unbiased: rules change *where* work happens, never the
  indicator function summed over the point space.

Why these rewrites matter here: the time-constrained executor spends its
quota wherever the operator tree tells it to, so a query written
``join→select`` sorts and merges strictly more tuples per sampling stage
than the equivalent ``select→join``. Cheaper stages mean the Figure 3.4
bisection affords larger sample fractions inside each interval — more
sample per second of quota, tighter confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.relational.expression import (
    Difference,
    Expression,
    Intersect,
    Join,
    Project,
    RelationRef,
    Select,
    Union,
)
from repro.relational.predicate import (
    And,
    Attr,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

HintProvider = Callable[[Expression], "float | None"]


@dataclass(frozen=True)
class RuleApplication:
    """One rule firing: which rule rewrote which subtree into what."""

    rule: str
    before: str
    after: str


class RewriteContext:
    """What a rule may consult: the catalog and optional selectivity hints.

    ``hint`` is the prestored-statistics hint callable of
    :class:`repro.statistics.prestored.SelectivityHinter` when the query
    runs with ``selectivity_source='hybrid'/'prestored'``; without analyzed
    statistics the context falls back to the paper's maximum-selectivity
    assumption (selectivity 1), which reduces size estimates to products of
    base-relation cardinalities.
    """

    def __init__(self, catalog: Catalog, hint: HintProvider | None = None) -> None:
        self.catalog = catalog
        self.hint = hint

    def schema_of(self, expr: Expression) -> Schema:
        return expr.schema(self.catalog)

    def selectivity(self, expr: Expression) -> float | None:
        if self.hint is None:
            return None
        return self.hint(expr)

    def estimated_rows(self, expr: Expression) -> float:
        """Estimated output cardinality of ``expr``.

        Point-space size (product of base-relation tuple counts) scaled by
        the prestored selectivity hint when one is available, by 1.0 (the
        maximum-selectivity assumption of Figure 3.3) otherwise.
        """
        space = 1.0
        for name in expr.base_relations():
            space *= max(self.catalog.get(name).tuple_count, 1)
        selectivity = self.selectivity(expr)
        return space if selectivity is None else selectivity * space


@runtime_checkable
class Rule(Protocol):
    """One rewrite rule: matches a node and proposes a replacement."""

    name: str

    def apply(self, node: Expression, ctx: RewriteContext) -> Expression | None:
        """Rewritten replacement for ``node``, or ``None`` if no match."""
        ...


# ----------------------------------------------------------------------
# Predicate helpers
# ----------------------------------------------------------------------
def conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten nested conjunctions into a list of conjunct formulas."""
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(conjuncts(part))
        return out
    return [predicate]


def and_of(parts: list[Predicate]) -> Predicate:
    """Rebuild a conjunction (single part stays bare, not wrapped)."""
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def rename_predicate(predicate: Predicate, mapping: dict[str, str]) -> Predicate:
    """Rewrite every attribute reference through ``mapping`` (id if absent)."""
    if isinstance(predicate, Comparison):
        value = predicate.value
        if isinstance(value, Attr):
            value = Attr(mapping.get(value.name, value.name))
        return Comparison(mapping.get(predicate.attr, predicate.attr), predicate.op, value)
    if isinstance(predicate, And):
        return And(tuple(rename_predicate(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(rename_predicate(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Not):
        return Not(rename_predicate(predicate.part, mapping))
    if isinstance(predicate, TruePredicate):
        return predicate
    raise TypeError(f"unknown predicate node {type(predicate).__name__}")


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class SelectionFusion:
    """``σ_p(σ_q(x)) → σ_{q∧p}(x)`` — one pass over the input, not two.

    The staged select charges one ``SELECT_CHECK`` per *input* tuple; a
    stack of selections re-scans its shrinking input once per level, while
    the fused formula decides every conjunct in a single pass. The
    comparison count (the cost-model feature) is the sum either way.
    """

    name = "fuse-selections"

    def apply(self, node: Expression, ctx: RewriteContext) -> Expression | None:
        if not (isinstance(node, Select) and isinstance(node.child, Select)):
            return None
        inner = node.child
        merged = conjuncts(inner.predicate) + conjuncts(node.predicate)
        return Select(inner.child, and_of(merged))


class PredicatePushdown:
    """Push selections below joins, set operations, and projections.

    * ``σ_p(x ⋈ y)`` — each conjunct of ``p`` whose attributes all come
      from one input moves into that input (right-side attributes are
      mapped back through the join's ``_r`` rename);
    * ``σ_p(x ∪/∩/− y) → σ_p(x) ∪/∩/− σ_p(y)`` (valid for difference too:
      ``p ∧ (x ∧ ¬y) ≡ (p ∧ x) ∧ ¬(p ∧ y)``);
    * ``σ_p(π_a(x)) → π_a(σ_p(x))`` — ``p`` only sees projected attributes,
      and every duplicate-group is constant on them, so filtering groups
      equals filtering rows; the selection then runs *before* the
      projection's sort + dedupe.

    This is the optimizer's main lever: every tuple removed early is a
    tuple the per-stage sorts and merges of Figures 4.4–4.7 never touch.
    """

    name = "push-predicates"

    def apply(self, node: Expression, ctx: RewriteContext) -> Expression | None:
        if not isinstance(node, Select):
            return None
        child = node.child
        if isinstance(child, Project):
            return Project(Select(child.child, node.predicate), child.attrs)
        if isinstance(child, (Union, Intersect, Difference)):
            return type(child)(
                Select(child.left, node.predicate),
                Select(child.right, node.predicate),
            )
        if isinstance(child, Join):
            return self._push_into_join(node, child, ctx)
        return None

    def _push_into_join(
        self, node: Select, join: Join, ctx: RewriteContext
    ) -> Expression | None:
        left_schema = ctx.schema_of(join.left)
        right_schema = ctx.schema_of(join.right)
        out_schema = ctx.schema_of(join)
        # Output position -> (side, original child attribute name). The
        # join renames right-side clashes with an ``_r`` suffix; predicates
        # above reference output names, children reference originals.
        left_arity = left_schema.arity
        to_right_original = {
            out_schema.names[left_arity + i]: right_schema.names[i]
            for i in range(right_schema.arity)
        }
        pushed_left: list[Predicate] = []
        pushed_right: list[Predicate] = []
        kept: list[Predicate] = []
        for conjunct in conjuncts(node.predicate):
            positions = [out_schema.index_of(a) for a in conjunct.attributes()]
            if positions and all(p < left_arity for p in positions):
                pushed_left.append(conjunct)
            elif positions and all(p >= left_arity for p in positions):
                pushed_right.append(rename_predicate(conjunct, to_right_original))
            else:  # attribute-free (TruePredicate) or straddling both sides
                kept.append(conjunct)
        if not pushed_left and not pushed_right:
            return None
        new_left = (
            Select(join.left, and_of(pushed_left)) if pushed_left else join.left
        )
        new_right = (
            Select(join.right, and_of(pushed_right)) if pushed_right else join.right
        )
        rebuilt: Expression = Join(new_left, new_right, join.on)
        if kept:
            rebuilt = Select(rebuilt, and_of(kept))
        return rebuilt


class ProjectionPruning:
    """``π_a(π_b(x)) → π_a(x)`` — the outer projection subsumes the inner.

    Validity needs ``a ⊆ b``, which schema validation guarantees (the outer
    attribute list resolved against the inner projection's output). Under
    set semantics the inner dedupe is redundant: distinct-on-``a`` of
    distinct-on-``b`` rows equals distinct-on-``a`` of the raw rows. The
    staged engine then builds one Goodman-estimated projection node instead
    of two stacked sorts.
    """

    name = "prune-projections"

    def apply(self, node: Expression, ctx: RewriteContext) -> Expression | None:
        if isinstance(node, Project) and isinstance(node.child, Project):
            return Project(node.child.child, node.attrs)
        return None


class SetOpNormalize:
    """Normalize set operations: idempotence and stable operand order.

    ``x ∪ x → x`` and ``x ∩ x → x`` (structural equality), sparing the
    inclusion–exclusion expansion a term it would only cancel; and the
    operands of the commutative operations are put into canonical order, so
    ``A ∩ B`` and ``B ∩ A`` share one plan-cache entry and one staged
    shape. Operand swap is schema-exact: set-operation inputs are
    attribute-compatible (same names, same types, same order).
    """

    name = "normalize-set-ops"

    def apply(self, node: Expression, ctx: RewriteContext) -> Expression | None:
        if not isinstance(node, (Union, Intersect)):
            return None
        if node.left == node.right:
            return node.left
        if node.right.canonical_str() < node.left.canonical_str():
            return type(node)(node.right, node.left)
        return None


class JoinChainReorder:
    """Reorder left-deep join chains so the smaller join runs innermost.

    ``(x ⋈₁ y) ⋈₂ z → (x ⋈₂ z) ⋈₁ y`` when ⋈₂'s left attributes all come
    from ``x`` and the estimated cardinality of ``x ⋈ z`` is strictly below
    that of ``x ⋈ y`` (prestored join/selection hints when the relations
    were analyzed, base cardinalities under the maximum-selectivity
    assumption otherwise). The inner join's output is every later stage's
    sort-and-merge input, so shrinking it shrinks each stage of the outer
    join.

    The rewrite permutes output *column order* (``x,y,z`` → ``x,z,y``
    column blocks) while preserving the relation as a set of named tuples.
    Since whole-row operations are order-sensitive, the driver enables this
    rule only on trees where column order is unobservable: no set
    operations anywhere in the query, and no join whose input names clash
    (so the ``_r`` rename never fires and every attribute keeps one global
    name). See :func:`reorder_is_safe`.
    """

    name = "reorder-join-inputs"

    def apply(self, node: Expression, ctx: RewriteContext) -> Expression | None:
        if not (isinstance(node, Join) and isinstance(node.left, Join)):
            return None
        inner, outer_on = node.left, node.on
        x, y, z = inner.left, inner.right, node.right
        x_names = set(ctx.schema_of(x).names)
        if not all(left_attr in x_names for left_attr, _ in outer_on):
            return None
        candidate_inner = Join(x, z, outer_on)
        if ctx.estimated_rows(candidate_inner) >= ctx.estimated_rows(inner):
            return None
        return Join(candidate_inner, y, inner.on)


def reorder_is_safe(expr: Expression, catalog: Catalog) -> bool:
    """May :class:`JoinChainReorder` run on this query at all?

    Column order must be unobservable: no Union/Intersect/Difference node
    (whole-row comparisons), and no join with clashing input names (the
    ``_r`` rename would bind different columns after a swap).
    """
    for node in expr.walk():
        if isinstance(node, (Union, Intersect, Difference)):
            return False
        if isinstance(node, Join):
            left = set(node.left.schema(catalog).names)
            right = set(node.right.schema(catalog).names)
            if left & right:
                return False
    return True


def default_rules() -> list[Rule]:
    """The standard rule set, in deterministic application order."""
    return [
        SelectionFusion(),
        PredicatePushdown(),
        ProjectionPruning(),
        SetOpNormalize(),
        JoinChainReorder(),
    ]
