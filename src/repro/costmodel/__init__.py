"""Adaptive time-cost formulas (system S10)."""

from repro.costmodel.linear import OnlineLinearModel, StepSpec
from repro.costmodel.model import CostModel
from repro.costmodel.steps import (
    INTERSECT_MERGE,
    INTERSECT_SORT,
    INTERSECT_WRITE,
    JOIN_MERGE,
    JOIN_SORT,
    JOIN_WRITE,
    PROJECT_DEDUPE,
    PROJECT_SORT,
    PROJECT_WRITE,
    SCAN_READ,
    SELECT_OP,
    STAGE_OVERHEAD,
    default_step_specs,
)

__all__ = [
    "CostModel",
    "INTERSECT_MERGE",
    "INTERSECT_SORT",
    "INTERSECT_WRITE",
    "JOIN_MERGE",
    "JOIN_SORT",
    "JOIN_WRITE",
    "OnlineLinearModel",
    "PROJECT_DEDUPE",
    "PROJECT_SORT",
    "PROJECT_WRITE",
    "SCAN_READ",
    "SELECT_OP",
    "STAGE_OVERHEAD",
    "StepSpec",
    "default_step_specs",
]
