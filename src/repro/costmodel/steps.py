"""Step catalogue — the controller's cost-formula vocabulary.

Each (operator kind, step) pair has a feature layout matching the paper's
per-step formulas:

======================  =============================  =====================
key                     features                        paper equation
======================  =============================  =====================
``scan.read``           ``[blocks, 1]``                 block I/O term
``select.op``           ``[n, p, 1]``                   (4.1)
``<binop>.write``       ``[n1+n2, 1]``                  (4.2)
``<binop>.sort``        ``[Σ n·log2 n, Σ n, 1]``        (4.3)
``<binop>.merge``       ``[reads, out_tuples, merges]`` (4.4)
``project.write``       ``[n, 1]``                      (4.2)
``project.sort``        ``[n·log2 n, n, 1]``            (4.3)
``project.dedupe``      ``[n, p, 1]``                   Fig. 4.7 step 3
``stage.overhead``      ``[1]``                         "overhead, measured
                                                        at run-time"
======================  =============================  =====================

where ``<binop>`` is ``join`` or ``intersect`` — the two share the same
*shape* ("the join operation and its time cost formula are similar to the
intersection operation … the values of coefficients and constants will be
different", Section 4.4), so they get separate models with the same layout.

The default priors are the "designer initial values" of Section 5: they were
chosen for the *largest* tuples and the most expensive formulas the designers
anticipated, i.e. they deliberately over-estimate a typical query on the
calibrated sun3_60 profile by roughly 2–3×, and the adaptive fitting has to
walk them in at run time. Nothing here reads the live machine profile.
"""

from __future__ import annotations

from repro.costmodel.linear import StepSpec
from repro.errors import CostModelError

SCAN_READ = "scan.read"
SELECT_OP = "select.op"
JOIN_WRITE = "join.write"
JOIN_SORT = "join.sort"
JOIN_MERGE = "join.merge"
INTERSECT_WRITE = "intersect.write"
INTERSECT_SORT = "intersect.sort"
INTERSECT_MERGE = "intersect.merge"
PROJECT_WRITE = "project.write"
PROJECT_SORT = "project.sort"
PROJECT_DEDUPE = "project.dedupe"
STAGE_OVERHEAD = "stage.overhead"


def default_step_specs(prior_scale: float = 1.0) -> dict[str, StepSpec]:
    """Fresh prior specifications for every step model.

    ``prior_scale`` rescales the prior *means* for faster or slower machine
    classes (a deployer's designers would have calibrated against their own
    hardware generation, as the paper's did against theirs). The deliberate
    2–3× pessimism relative to the true per-step costs, and the prior
    strengths, are preserved at every scale.
    """
    specs = [
        StepSpec(SCAN_READ, prior=(0.15, 0.02), scales=(4.0, 1.0), weight=0.5),
        StepSpec(
            SELECT_OP, prior=(0.013, 0.10, 0.06), scales=(20.0, 2.0, 1.0), weight=0.5
        ),
        StepSpec(JOIN_WRITE, prior=(0.006, 0.03), scales=(20.0, 1.0), weight=0.5),
        StepSpec(
            JOIN_SORT, prior=(0.0017, 0.004, 0.02), scales=(100.0, 20.0, 1.0),
            weight=0.5,
        ),
        StepSpec(
            JOIN_MERGE, prior=(0.0028, 0.02, 0.03), scales=(50.0, 5.0, 1.0),
            weight=0.5,
        ),
        StepSpec(
            INTERSECT_WRITE, prior=(0.006, 0.03), scales=(20.0, 1.0), weight=0.5
        ),
        StepSpec(
            INTERSECT_SORT, prior=(0.0017, 0.004, 0.02), scales=(100.0, 20.0, 1.0),
            weight=0.5,
        ),
        StepSpec(
            INTERSECT_MERGE, prior=(0.0028, 0.02, 0.03), scales=(50.0, 5.0, 1.0),
            weight=0.5,
        ),
        StepSpec(
            PROJECT_WRITE, prior=(0.006, 0.03), scales=(20.0, 1.0), weight=0.5
        ),
        StepSpec(
            PROJECT_SORT, prior=(0.0017, 0.004, 0.02), scales=(100.0, 20.0, 1.0),
            weight=0.5,
        ),
        StepSpec(
            PROJECT_DEDUPE, prior=(0.0035, 0.10, 0.03), scales=(20.0, 2.0, 1.0),
            weight=0.5,
        ),
        StepSpec(STAGE_OVERHEAD, prior=(0.6,), scales=(1.0,), weight=1.0),
    ]
    if prior_scale <= 0:
        raise CostModelError(f"prior_scale must be positive: {prior_scale}")
    if prior_scale != 1.0:
        specs = [
            StepSpec(
                s.name,
                prior=tuple(p * prior_scale for p in s.prior),
                scales=s.scales,
                weight=s.weight,
            )
            for s in specs
        ]
    return {spec.name: spec for spec in specs}
