"""The adaptive cost model — predict and refit per-step costs.

:class:`CostModel` is the controller-side registry of
:class:`~repro.costmodel.linear.OnlineLinearModel` instances, one per step of
the catalogue in :mod:`repro.costmodel.steps`. The staged operator nodes

* call :meth:`predict` inside ``Sample-Size-Determine``'s bisection to price
  a candidate sample fraction, and
* call :meth:`observe` after executing each step with the *measured* charged
  seconds, which is the paper's run-time coefficient adjustment.

``adaptive=False`` freezes the priors — the *fixed-form cost formula*
comparator of ablation A3 ("using a fixed-form cost formula for an operation
is not flexible enough", Section 4).
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel.linear import OnlineLinearModel, StepSpec
from repro.costmodel.steps import default_step_specs
from repro.errors import CostModelError


class CostModel:
    """Registry of adaptive per-step cost models."""

    def __init__(
        self,
        specs: dict[str, StepSpec] | None = None,
        adaptive: bool = True,
    ) -> None:
        self._specs = dict(specs) if specs is not None else default_step_specs()
        self._models: dict[str, OnlineLinearModel] = {}
        self.adaptive = adaptive

    def _model(self, step: str) -> OnlineLinearModel:
        if step not in self._models:
            if step not in self._specs:
                raise CostModelError(f"unknown cost step {step!r}")
            self._models[step] = OnlineLinearModel(self._specs[step])
        return self._models[step]

    def predict(self, step: str, features: Sequence[float]) -> float:
        """Predicted seconds for one execution of ``step``."""
        return self._model(step).predict(features)

    def observe(self, step: str, features: Sequence[float], seconds: float) -> None:
        """Refit ``step``'s coefficients from a measured execution."""
        if not self.adaptive:
            return
        self._model(step).observe(features, seconds)

    def coefficients(self, step: str) -> list[float]:
        """Current coefficients (posterior mean) of ``step``'s formula."""
        return [float(c) for c in self._model(step).coefficients]

    def observation_counts(self) -> dict[str, int]:
        """Measured executions folded in so far, per instantiated step."""
        return {name: m.observations for name, m in self._models.items()}
