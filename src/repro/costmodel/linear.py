"""Online Bayesian linear regression for step-cost coefficients.

Section 4 of the paper: "during the execution of the operation, we record
the actual amount of time spent on each step and, based on it, we
dynamically adjust the coefficients of the cost functions for each step".

Each time-consuming step of an operator (write / sort / merge / …) has a
linear cost formula ``cost = θ · x`` over a small feature vector (e.g.
``[n·log2 n, n, 1]`` for the sort step, equation 4.3). We maintain the
coefficients with conjugate Bayesian updating: a Gaussian prior
``N(θ0, diag(scale²)/weight)`` around the designer's initial coefficients,
plus the normal equations of all observed (features, seconds) pairs. With a
handful of observations per query — one per stage — the posterior mean moves
quickly toward the machine's true coefficients while the prior keeps the
problem well-posed, which is exactly the adaptive behaviour the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import CostModelError


@dataclass(frozen=True)
class StepSpec:
    """Static description of one step model.

    ``prior`` — the designer's initial coefficients (Section 5: "assigned
    initial values based on the experiments ...").
    ``scales`` — typical feature magnitudes, setting how strongly the prior
    resists the first observations per coordinate.
    ``weight`` — prior pseudo-observation count.
    """

    name: str
    prior: tuple[float, ...]
    scales: tuple[float, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.prior) != len(self.scales):
            raise CostModelError(
                f"step {self.name!r}: prior and scales lengths differ"
            )
        if any(s <= 0 for s in self.scales):
            raise CostModelError(f"step {self.name!r}: scales must be positive")
        if self.weight <= 0:
            raise CostModelError(f"step {self.name!r}: weight must be positive")

    @property
    def dim(self) -> int:
        return len(self.prior)


class OnlineLinearModel:
    """Posterior-mean linear model for one step's cost."""

    def __init__(self, spec: StepSpec) -> None:
        self.spec = spec
        theta0 = np.asarray(spec.prior, dtype=float)
        scales = np.asarray(spec.scales, dtype=float)
        # Prior precision: weight observations at typical feature magnitude.
        self._a = np.diag(spec.weight * scales * scales)
        self._b = self._a @ theta0
        self._theta = theta0.copy()
        self.observations = 0

    @property
    def coefficients(self) -> np.ndarray:
        """Current posterior-mean coefficients."""
        return self._theta.copy()

    def predict(self, features: Sequence[float]) -> float:
        """Predicted seconds for one step execution (floored at 0)."""
        x = np.asarray(features, dtype=float)
        if x.shape != (self.spec.dim,):
            raise CostModelError(
                f"step {self.spec.name!r}: expected {self.spec.dim} features, "
                f"got {x.shape}"
            )
        return float(max(self._theta @ x, 0.0))

    def observe(self, features: Sequence[float], seconds: float) -> None:
        """Fold one measured (features, seconds) pair into the posterior."""
        x = np.asarray(features, dtype=float)
        if x.shape != (self.spec.dim,):
            raise CostModelError(
                f"step {self.spec.name!r}: expected {self.spec.dim} features, "
                f"got {x.shape}"
            )
        if seconds < 0:
            raise CostModelError(f"negative step time {seconds}")
        self._a += np.outer(x, x)
        self._b += x * seconds
        self._theta = np.linalg.solve(self._a, self._b)
        self.observations += 1
