"""Selection formulas.

The paper's selection operator takes a *selection formula* — in the
experiments "a selection formula containing only one integer comparison"
(Section 5.A) — and its cost formula charges per-tuple predicate checks whose
coefficient depends on the number of comparisons in the formula (Section 4:
coefficients "emphasize specific characteristics of a query such as ...
comparisons in selection formulas").

Predicates are small immutable ASTs: :class:`Comparison` leaves combined with
:class:`And` / :class:`Or` / :class:`Not`. A predicate is *compiled* against
a schema into a fast row -> bool callable, and exposes
:meth:`Predicate.comparison_count` as a cost-model feature.

:meth:`Predicate.compile_mask` is the vectorized counterpart used by the
kernel layer (:mod:`repro.kernels`): it binds the same formula to a
columns -> boolean-mask callable operating on whole stages at once. Both
compilations decide the same rows — the mask path only changes wall-clock
time, never the charged simulated cost (the ``SELECT_CHECK`` charge is per
input tuple either way).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.catalog.schema import Schema
from repro.errors import ExpressionError
from repro.storage.block import Row

ColumnMask = Callable[[Any], np.ndarray]
"""Vectorized predicate: a column provider (``.column(i)``, ``len()``) -> bools."""

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class Predicate:
    """Abstract base of all selection formulas."""

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        """Bind attribute names to positions; returns a row predicate."""
        raise NotImplementedError

    def compile_mask(self, schema: Schema) -> ColumnMask:
        """Bind to positions; returns a columns -> boolean-mask callable."""
        raise NotImplementedError

    def comparison_count(self) -> int:
        """Number of atomic comparisons (a cost-model feature)."""
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """Attribute names referenced by the formula."""
        raise NotImplementedError

    def canonical_str(self) -> str:
        """Order-stable rendering: equal formulas modulo And/Or operand
        order render identically (feeds the expression plan-cache key)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.canonical_str()

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attr <op> constant`` or ``attr <op> attr`` (when rhs is :class:`Attr`)."""

    attr: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExpressionError(
                f"unknown comparison operator {self.op!r}; "
                f"choose from {sorted(_OPS)}"
            )

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.attr)
        fn = _OPS[self.op]
        if isinstance(self.value, Attr):
            other = schema.index_of(self.value.name)
            return lambda row: fn(row[idx], row[other])
        constant = self.value
        return lambda row: fn(row[idx], constant)

    def compile_mask(self, schema: Schema) -> ColumnMask:
        idx = schema.index_of(self.attr)
        fn = _OPS[self.op]
        if isinstance(self.value, Attr):
            other = schema.index_of(self.value.name)
            return lambda cols: np.asarray(
                fn(cols.column(idx), cols.column(other)), dtype=bool
            )
        constant = self.value
        return lambda cols: np.asarray(
            fn(cols.column(idx), constant), dtype=bool
        )

    def comparison_count(self) -> int:
        return 1

    def attributes(self) -> set[str]:
        names = {self.attr}
        if isinstance(self.value, Attr):
            names.add(self.value.name)
        return names

    def canonical_str(self) -> str:
        if isinstance(self.value, Attr):
            return f"{self.attr}{self.op}@{self.value.name}"
        return f"{self.attr}{self.op}{self.value!r}"


@dataclass(frozen=True)
class Attr:
    """Marker wrapping an attribute name used on a comparison's right side."""

    name: str


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of sub-formulas."""

    parts: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ExpressionError("And needs at least two sub-predicates")

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        fns = [p.compile(schema) for p in self.parts]
        return lambda row: all(fn(row) for fn in fns)

    def compile_mask(self, schema: Schema) -> ColumnMask:
        fns = [p.compile_mask(schema) for p in self.parts]
        return lambda cols: np.logical_and.reduce([fn(cols) for fn in fns])

    def comparison_count(self) -> int:
        return sum(p.comparison_count() for p in self.parts)

    def attributes(self) -> set[str]:
        return set().union(*(p.attributes() for p in self.parts))

    def canonical_str(self) -> str:
        rendered = sorted(p.canonical_str() for p in self.parts)
        return "(" + " & ".join(rendered) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of sub-formulas."""

    parts: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ExpressionError("Or needs at least two sub-predicates")

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        fns = [p.compile(schema) for p in self.parts]
        return lambda row: any(fn(row) for fn in fns)

    def compile_mask(self, schema: Schema) -> ColumnMask:
        fns = [p.compile_mask(schema) for p in self.parts]
        return lambda cols: np.logical_or.reduce([fn(cols) for fn in fns])

    def comparison_count(self) -> int:
        return sum(p.comparison_count() for p in self.parts)

    def attributes(self) -> set[str]:
        return set().union(*(p.attributes() for p in self.parts))

    def canonical_str(self) -> str:
        rendered = sorted(p.canonical_str() for p in self.parts)
        return "(" + " | ".join(rendered) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a sub-formula."""

    part: Predicate

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        fn = self.part.compile(schema)
        return lambda row: not fn(row)

    def compile_mask(self, schema: Schema) -> ColumnMask:
        fn = self.part.compile_mask(schema)
        return lambda cols: ~fn(cols)

    def comparison_count(self) -> int:
        return self.part.comparison_count()

    def attributes(self) -> set[str]:
        return self.part.attributes()

    def canonical_str(self) -> str:
        return f"!{self.part.canonical_str()}"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always-true formula (selects everything); zero comparisons."""

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        return lambda row: True

    def compile_mask(self, schema: Schema) -> ColumnMask:
        return lambda cols: np.ones(len(cols), dtype=bool)

    def comparison_count(self) -> int:
        return 0

    def attributes(self) -> set[str]:
        return set()

    def canonical_str(self) -> str:
        return "true"


def attr(name: str) -> Attr:
    """Reference an attribute on the right-hand side of a comparison."""
    return Attr(name)


def cmp(attribute: str, op: str, value: Any) -> Comparison:
    """Shorthand constructor: ``cmp("a", "<", 500)``."""
    return Comparison(attribute, op, value)
