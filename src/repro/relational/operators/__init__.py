"""Charged operator primitives shared by the exact and staged engines."""

from repro.relational.operators.merge import (
    charge_merge,
    merge_difference,
    merge_intersect,
    merge_join,
    merge_union,
)
from repro.relational.operators.sort import (
    charge_external_sort,
    external_sort,
    key_for_positions,
    whole_row_key,
)
from repro.relational.operators.unary import (
    apply_select,
    dedupe_sorted,
    project_rows,
)

__all__ = [
    "apply_select",
    "charge_external_sort",
    "charge_merge",
    "dedupe_sorted",
    "external_sort",
    "key_for_positions",
    "merge_difference",
    "merge_intersect",
    "merge_join",
    "merge_union",
    "project_rows",
    "whole_row_key",
]
