"""Unary operator primitives: selection and duplicate elimination.

Selection (Figure 4.3) is "exactly the same as the regular selection
operation evaluation in a relational DBMS": scan input tuples, check the
formula, write qualifying tuples out. Its cost formula — equation (4.1) —
is ``c1·n + C1·p + C2`` and we charge ``SELECT_CHECK`` per input tuple,
``PAGE_WRITE`` per output page and ``OP_INIT`` once.

Duplicate elimination is the third step of the Project algorithm
(Figure 4.7): "scan the temporary file and write distinct tuples with their
occupancy into the output relation". It expects *sorted* input and charges
``DEDUPE_TUPLE`` per scanned tuple plus output pages. It returns the group
occupancies, which Goodman's estimator consumes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.storage.block import Row
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind


def apply_select(
    rows: Sequence[Row],
    predicate: Callable[[Row], bool],
    charger: CostCharger,
    blocking_factor: int,
) -> list[Row]:
    """Filter ``rows`` by ``predicate``, charging equation (4.1)'s terms."""
    charger.charge(CostKind.OP_INIT, 1)
    if rows:
        charger.charge(CostKind.SELECT_CHECK, len(rows))
    out = [row for row in rows if predicate(row)]
    if out:
        charger.charge(CostKind.PAGE_WRITE, -(-len(out) // blocking_factor))
    return out


def dedupe_sorted(
    rows: Sequence[Row],
    charger: CostCharger,
    blocking_factor: int,
) -> tuple[list[Row], list[int]]:
    """Collapse a *sorted* sequence into (distinct rows, occupancy counts)."""
    if rows:
        charger.charge(CostKind.DEDUPE_TUPLE, len(rows))
    distinct: list[Row] = []
    occupancy: list[int] = []
    for row in rows:
        if distinct and distinct[-1] == row:
            occupancy[-1] += 1
        else:
            distinct.append(row)
            occupancy.append(1)
    if distinct:
        charger.charge(CostKind.PAGE_WRITE, -(-len(distinct) // blocking_factor))
    return distinct, occupancy


def project_rows(rows: Sequence[Row], positions: Sequence[int]) -> list[Row]:
    """Project each row onto attribute ``positions`` (no charge; pure reshape)."""
    idx = tuple(positions)
    return [tuple(row[i] for i in idx) for row in rows]
