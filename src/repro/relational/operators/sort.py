"""External-sort primitive.

Every binary operator of the paper sorts its temporary files before merging
(Figures 4.4, 4.6, 4.7 all have a "sort the temporary files" step), and the
cost formula of that step — equation (4.3) — is::

    C2 · n·log2(n) + C3 · n + C4

We charge exactly those terms: ``SORT_UNIT`` per ``n·log2(n)`` comparison
unit and ``SORT_TUPLE`` per tuple moved. The actual ordering is done with
Python's sort; what matters for the reproduction is the *charged* time, which
follows the 1989 external-sort cost shape.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.storage.block import Row
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind

SortKey = Callable[[Row], tuple]


def key_for_positions(positions: Sequence[int]) -> SortKey:
    """Sort key extracting the attribute ``positions`` of a row, in order."""
    idx = tuple(positions)
    return lambda row: tuple(row[i] for i in idx)


def whole_row_key(row: Row) -> tuple:
    """Sort key over the entire tuple (used by set operations)."""
    return row


def charge_external_sort(charger: CostCharger, n: int) -> None:
    """Charge equation (4.3)'s terms for sorting ``n`` tuples.

    Split out so the vectorized kernels can replay the exact charge
    sequence of :func:`external_sort` while ordering the rows with a bulk
    primitive instead of Python's ``sorted``.
    """
    if n > 1:
        charger.charge(CostKind.SORT_UNIT, n * math.log2(n))
    if n:
        charger.charge(CostKind.SORT_TUPLE, n)


def external_sort(
    rows: list[Row], key: SortKey, charger: CostCharger
) -> list[Row]:
    """Return ``rows`` sorted by ``key``, charging equation (4.3)'s terms."""
    charge_external_sort(charger, len(rows))
    return sorted(rows, key=key)
