"""Sorted-merge primitives: intersect, join, union, difference.

These implement the third step of the paper's operator algorithms
(Figures 4.4 and 4.6): "perform the intersection/join operations between the
sorted files". The charged terms follow equation (4.4)::

    C4 · (n1 + n2)      — reading and comparing tuples   (MERGE_TUPLE)
    C3 · p              — writing the output pages        (PAGE_WRITE)
    C4'                 — per-merge constant              (MERGE_INIT)

plus ``OUTPUT_TUPLE`` per materialised result tuple, which the paper folds
into its constants but matters for the join's 70 000-output-tuple workload.

Inputs must already be sorted on the relevant key; callers are responsible
for that (see :mod:`repro.relational.operators.sort`). Union and Difference
merges exist for the *exact* evaluator only — the estimator never executes
them, because the inclusion–exclusion rewrite replaces them with Intersect
(Section 4.2).
"""

from __future__ import annotations

from typing import Sequence

from repro.storage.block import Row
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind


def charge_merge(
    charger: CostCharger,
    n_left: int,
    n_right: int,
    outputs: list[Row],
    blocking_factor: int,
) -> None:
    """Charge equation (4.4)'s terms for one pairwise sorted merge.

    Public so the vectorized kernels can replay the exact per-merge charge
    sequence (one call per new x old run pair, in run order) after
    computing all the pairs' outputs in bulk.
    """
    charger.charge(CostKind.MERGE_INIT, 1)
    if n_left + n_right:
        charger.charge(CostKind.MERGE_TUPLE, n_left + n_right)
    if outputs:
        charger.charge(CostKind.OUTPUT_TUPLE, len(outputs))
        charger.charge(CostKind.PAGE_WRITE, -(-len(outputs) // blocking_factor))


_charge_merge = charge_merge  # backwards-compatible module-private alias


def merge_intersect(
    left: list[Row],
    right: list[Row],
    charger: CostCharger,
    blocking_factor: int,
) -> list[Row]:
    """Set intersection of two whole-tuple-sorted files."""
    out: list[Row] = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] == right[j]:
            out.append(left[i])
            value = left[i]
            while i < len(left) and left[i] == value:
                i += 1
            while j < len(right) and right[j] == value:
                j += 1
        elif left[i] < right[j]:
            i += 1
        else:
            j += 1
    _charge_merge(charger, len(left), len(right), out, blocking_factor)
    return out


def merge_union(
    left: list[Row],
    right: list[Row],
    charger: CostCharger,
    blocking_factor: int,
) -> list[Row]:
    """Set union of two whole-tuple-sorted files (duplicates eliminated)."""
    out: list[Row] = []
    i = j = 0
    while i < len(left) or j < len(right):
        if j >= len(right) or (i < len(left) and left[i] < right[j]):
            value = left[i]
        elif i >= len(left) or right[j] < left[i]:
            value = right[j]
        else:
            value = left[i]
        out.append(value)
        while i < len(left) and left[i] == value:
            i += 1
        while j < len(right) and right[j] == value:
            j += 1
    _charge_merge(charger, len(left), len(right), out, blocking_factor)
    return out


def merge_difference(
    left: list[Row],
    right: list[Row],
    charger: CostCharger,
    blocking_factor: int,
) -> list[Row]:
    """Set difference (left − right) of two whole-tuple-sorted files."""
    out: list[Row] = []
    i = j = 0
    while i < len(left):
        while j < len(right) and right[j] < left[i]:
            j += 1
        if j < len(right) and right[j] == left[i]:
            value = left[i]
            while i < len(left) and left[i] == value:
                i += 1
        else:
            value = left[i]
            out.append(value)
            while i < len(left) and left[i] == value:
                i += 1
    _charge_merge(charger, len(left), len(right), out, blocking_factor)
    return out


def merge_join(
    left: list[Row],
    right: list[Row],
    left_key: Sequence[int],
    right_key: Sequence[int],
    charger: CostCharger,
    blocking_factor: int,
) -> list[Row]:
    """Equi-join of files sorted on their respective key positions.

    Produces the concatenation ``left_tuple ++ right_tuple`` for every pair
    with equal keys (the cross product within each matching key group).
    """
    lk = tuple(left_key)
    rk = tuple(right_key)
    out: list[Row] = []
    i = j = 0
    while i < len(left) and j < len(right):
        lkey = tuple(left[i][p] for p in lk)
        rkey = tuple(right[j][p] for p in rk)
        if lkey < rkey:
            i += 1
        elif rkey < lkey:
            j += 1
        else:
            # Gather both equal-key groups, emit their cross product.
            i_end = i
            while i_end < len(left) and tuple(left[i_end][p] for p in lk) == lkey:
                i_end += 1
            j_end = j
            while j_end < len(right) and tuple(right[j_end][p] for p in rk) == rkey:
                j_end += 1
            for li in range(i, i_end):
                for rj in range(j, j_end):
                    out.append(left[li] + right[rj])
            i, j = i_end, j_end
    _charge_merge(charger, len(left), len(right), out, blocking_factor)
    return out
