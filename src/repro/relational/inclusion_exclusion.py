"""Inclusion–exclusion rewrite of COUNT queries.

Section 2 of the paper: "We first transform COUNT(E) into Σ ± COUNT(E_i')
using the Principle of Inclusion and Exclusion [Liu 68], where E_i' is an RA
expression containing only Select, Join, Intersect and Project operations."

We implement the transform as an *indicator-polynomial expansion*. Every set
operation has an indicator identity over its inputs' indicator functions::

    1[A ∪ B] = 1[A] + 1[B] − 1[A]·1[B]
    1[A − B] = 1[A] − 1[A]·1[B]
    1[A ∩ B] = 1[A]·1[B]          (a product term *is* an Intersect)

and Select / Join are (bi)linear over signed sums of sets, so an arbitrary
expression expands into a signed sum of SJI(P) terms. Summing indicators
over the domain turns the identity into the COUNT identity the paper uses::

    COUNT(E) = Σ_i  coef_i · COUNT(term_i)

Projection is the one non-linear operator: ``π`` distributes over Union
(``π(A∪B) = π(A) ∪ π(B)``) but **not** over Difference. We therefore push
projections through unions first and reject a Difference beneath a
Projection — the paper's framework (Goodman's estimator per SJIP term) has
the same boundary.

Structurally equal terms are merged (so ``COUNT(A ∪ A)`` collapses to
``COUNT(A)``), and ``Intersect(X, X)`` simplifies to ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExpressionError
from repro.relational.expression import (
    Difference,
    Expression,
    Intersect,
    Join,
    Project,
    RelationRef,
    Select,
    Union,
)


@dataclass(frozen=True)
class CountTerm:
    """One signed SJIP term of the expanded COUNT."""

    coefficient: int
    expression: Expression


def expand_count(expr: Expression) -> list[CountTerm]:
    """Expand ``COUNT(expr)`` into signed SJIP terms (see module docs).

    The result always satisfies ``COUNT(expr) == Σ coef·COUNT(term)`` under
    set semantics; terms with coefficient zero are dropped.
    """
    pushed = _push_project(expr)
    terms = _poly(pushed)
    merged: dict[Expression, int] = {}
    order: list[Expression] = []
    for coef, term in terms:
        if term not in merged:
            merged[term] = 0
            order.append(term)
        merged[term] += coef
    return [
        CountTerm(merged[t], t) for t in order if merged[t] != 0
    ]


def _push_project(expr: Expression) -> Expression:
    """Distribute projections through unions; reject project-over-difference."""
    if isinstance(expr, RelationRef):
        return expr
    if isinstance(expr, Select):
        return Select(_push_project(expr.child), expr.predicate)
    if isinstance(expr, Project):
        child = _push_project(expr.child)
        if isinstance(child, Union):
            return Union(
                _push_project(Project(child.left, expr.attrs)),
                _push_project(Project(child.right, expr.attrs)),
            )
        if _contains_difference(child):
            raise ExpressionError(
                "COUNT of a Projection over a Difference has no "
                "inclusion–exclusion expansion; rewrite the query so the "
                "difference is above the projection"
            )
        return Project(child, expr.attrs)
    if isinstance(expr, Join):
        return Join(_push_project(expr.left), _push_project(expr.right), expr.on)
    if isinstance(expr, Intersect):
        return Intersect(_push_project(expr.left), _push_project(expr.right))
    if isinstance(expr, Union):
        return Union(_push_project(expr.left), _push_project(expr.right))
    if isinstance(expr, Difference):
        return Difference(_push_project(expr.left), _push_project(expr.right))
    raise ExpressionError(f"unknown expression node {type(expr).__name__}")


def _contains_difference(expr: Expression) -> bool:
    return any(isinstance(n, Difference) for n in expr.walk())


def _poly(expr: Expression) -> list[tuple[int, Expression]]:
    """Signed-sum-of-SJIP-terms expansion (indicator polynomial)."""
    if isinstance(expr, RelationRef):
        return [(1, expr)]
    if isinstance(expr, Select):
        return [
            (coef, Select(term, expr.predicate)) for coef, term in _poly(expr.child)
        ]
    if isinstance(expr, Project):
        child_terms = _poly(expr.child)
        # _push_project guarantees a union/difference-free child here, so the
        # child polynomial is a single positive term.
        if len(child_terms) != 1 or child_terms[0][0] != 1:
            raise ExpressionError(
                "internal: projection child expanded to multiple terms"
            )
        return [(1, Project(child_terms[0][1], expr.attrs))]
    if isinstance(expr, Join):
        return [
            (lc * rc, Join(lt, rt, expr.on))
            for lc, lt in _poly(expr.left)
            for rc, rt in _poly(expr.right)
        ]
    if isinstance(expr, Intersect):
        return [
            (lc * rc, _intersect(lt, rt))
            for lc, lt in _poly(expr.left)
            for rc, rt in _poly(expr.right)
        ]
    if isinstance(expr, Union):
        left, right = _poly(expr.left), _poly(expr.right)
        both = [
            (-lc * rc, _intersect(lt, rt)) for lc, lt in left for rc, rt in right
        ]
        return left + right + both
    if isinstance(expr, Difference):
        left, right = _poly(expr.left), _poly(expr.right)
        both = [
            (-lc * rc, _intersect(lt, rt)) for lc, lt in left for rc, rt in right
        ]
        return left + both
    raise ExpressionError(f"unknown expression node {type(expr).__name__}")


def _intersect(left: Expression, right: Expression) -> Expression:
    """Build ``left ∩ right`` with the idempotence shortcut ``X ∩ X = X``."""
    if left == right:
        return left
    return Intersect(left, right)
