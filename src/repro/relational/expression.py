"""Relational-algebra expression trees.

This is the query language of the reproduced system: ERAM "uses relational
algebra expressions as its query language" (Section 5). An expression is an
immutable AST over:

* :class:`RelationRef` — a named base relation;
* :class:`Select` — selection with a :class:`~repro.relational.predicate.Predicate`;
* :class:`Project` — duplicate-eliminating projection;
* :class:`Join` — equi-join on attribute pairs;
* :class:`Intersect`, :class:`Union`, :class:`Difference` — set operations on
  attribute-compatible inputs.

The estimator pipeline (Section 2) needs three structural facts an
expression can report: its *operand relations* (the dimensions of the point
space), whether it contains a projection (which switches the estimator to
Goodman's), and whether it contains Union/Difference (which triggers the
inclusion–exclusion rewrite).

Use the module-level builders (:func:`rel`, :func:`select`, …) rather than
the dataclass constructors; they read like the algebra::

    expr = join(select(rel("orders"), cmp("qty", ">", 10)), rel("parts"),
                on=[("part_id", "pid")])

or chain the equivalent fluent methods, which build the identical tree::

    expr = (rel("orders").where(cmp("qty", ">", 10))
            .join(rel("parts"), on=[("part_id", "pid")]))
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import ExpressionError
from repro.relational.predicate import Predicate


class Expression:
    """Abstract base of all RA expression nodes."""

    def schema(self, catalog: Catalog) -> Schema:
        """Resolve the output schema against ``catalog`` (validates)."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Structural queries used by the estimation pipeline
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of the tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def base_relations(self) -> list[str]:
        """Operand relation names, left-to-right (with duplicates if any)."""
        return [n.name for n in self.walk() if isinstance(n, RelationRef)]

    def contains_projection(self) -> bool:
        return any(isinstance(n, Project) for n in self.walk())

    def contains_set_difference_or_union(self) -> bool:
        return any(isinstance(n, (Union, Difference)) for n in self.walk())

    def is_sjip(self) -> bool:
        """True iff only Select/Join/Intersect/Project nodes appear."""
        allowed = (RelationRef, Select, Join, Intersect, Project)
        return all(isinstance(n, allowed) for n in self.walk())

    def operator_count(self) -> int:
        """Number of operator nodes (excluding relation references)."""
        return sum(1 for n in self.walk() if not isinstance(n, RelationRef))

    # ------------------------------------------------------------------
    # Canonical form — the optimizer's logical-IR identity
    # ------------------------------------------------------------------
    def canonical_str(self) -> str:
        """Order-stable, content-complete rendering of the tree.

        Unlike ``str(expr)``, which mirrors how the tree was written, the
        canonical form renders semantically equal trees identically:
        operands of the commutative set operations (Union, Intersect) and
        the attribute pairs of a Join appear in sorted order, and selection
        formulas use :meth:`Predicate.canonical_str` (sorted And/Or
        operands). It is the logical identity the planner keys its plan
        cache on — see :meth:`structural_hash`.
        """
        return self._render(canonical=True)

    def structural_hash(self) -> str:
        """Hex digest of :meth:`canonical_str` (the plan-cache key)."""
        return hashlib.sha256(
            self._render(canonical=True).encode("utf-8")
        ).hexdigest()

    def _render(self, canonical: bool) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fluent construction — chainable equivalents of the module builders
    # ------------------------------------------------------------------
    def where(self, predicate: Predicate) -> "Select":
        """``select(self, predicate)``, chainable::

            rel("orders").where(cmp("qty", ">", 40))
        """
        return Select(self, predicate)

    def project(self, *attrs: str) -> "Project":
        """``project(self, attrs)`` with attributes as varargs."""
        if len(attrs) == 1 and not isinstance(attrs[0], str):
            attrs = tuple(attrs[0])  # accept a single sequence too
        return Project(self, tuple(attrs))

    def join(
        self,
        other: "Expression",
        on: Sequence[tuple[str, str] | str] | str,
    ) -> "Join":
        """``join(self, other, on)``; ``on`` items as in the builder."""
        if isinstance(on, str):
            on = (on,)
        pairs = tuple(
            (p, p) if isinstance(p, str) else (p[0], p[1]) for p in on
        )
        return Join(self, other, pairs)

    def union(self, other: "Expression") -> "Union":
        return Union(self, other)

    def difference(self, other: "Expression") -> "Difference":
        return Difference(self, other)

    def intersect(self, other: "Expression") -> "Intersect":
        return Intersect(self, other)


@dataclass(frozen=True)
class RelationRef(Expression):
    """A reference to a stored base relation by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ExpressionError("relation name must be non-empty")

    def schema(self, catalog: Catalog) -> Schema:
        return catalog.get(self.name).schema

    def children(self) -> tuple[Expression, ...]:
        return ()

    def _render(self, canonical: bool) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Select(Expression):
    """Selection: keep child tuples satisfying ``predicate``."""

    child: Expression
    predicate: Predicate

    def schema(self, catalog: Catalog) -> Schema:
        schema = self.child.schema(catalog)
        for name in self.predicate.attributes():
            schema.index_of(name)  # raises SchemaError if unknown
        return schema

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def _render(self, canonical: bool) -> str:
        return (
            f"select({self.child._render(canonical)}; "
            f"{self.predicate.canonical_str()})"
        )

    def __str__(self) -> str:
        return self._render(canonical=False)


@dataclass(frozen=True)
class Project(Expression):
    """Duplicate-eliminating projection onto ``attrs``."""

    child: Expression
    attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attrs:
            raise ExpressionError("projection needs at least one attribute")

    def schema(self, catalog: Catalog) -> Schema:
        return self.child.schema(catalog).project(self.attrs)

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def _render(self, canonical: bool) -> str:
        return f"project({self.child._render(canonical)}; {','.join(self.attrs)})"

    def __str__(self) -> str:
        return self._render(canonical=False)


@dataclass(frozen=True)
class Join(Expression):
    """Equi-join of two expressions on attribute pairs ``on``.

    ``on`` is a tuple of ``(left_attr, right_attr)`` pairs; its length is the
    "number of join attributes" cost feature of Section 4.
    """

    left: Expression
    right: Expression
    on: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.on:
            raise ExpressionError("join needs at least one attribute pair")

    def schema(self, catalog: Catalog) -> Schema:
        left = self.left.schema(catalog)
        right = self.right.schema(catalog)
        for l_attr, r_attr in self.on:
            la = left.attribute(l_attr)
            ra = right.attribute(r_attr)
            if la.type is not ra.type:
                raise ExpressionError(
                    f"join attributes {l_attr!r} ({la.type}) and "
                    f"{r_attr!r} ({ra.type}) have different types"
                )
        return left.join(right)

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _render(self, canonical: bool) -> str:
        on = sorted(self.on) if canonical else self.on
        pairs = ",".join(f"{a}={b}" for a, b in on)
        return (
            f"join({self.left._render(canonical)}, "
            f"{self.right._render(canonical)}; {pairs})"
        )

    def __str__(self) -> str:
        return self._render(canonical=False)


class _SetOperation(Expression):
    """Shared schema logic of Union / Difference / Intersect."""

    left: Expression
    right: Expression
    _opname = "set-op"

    def schema(self, catalog: Catalog) -> Schema:
        left = self.left.schema(catalog)
        right = self.right.schema(catalog)
        left.require_compatible(right, self._opname)
        return left

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def _render(self, canonical: bool) -> str:
        left = self.left._render(canonical)
        right = self.right._render(canonical)
        if canonical and self._opname in ("union", "intersect") and right < left:
            left, right = right, left  # commutative: operand-order stable
        return f"{self._opname}({left}, {right})"

    def __str__(self) -> str:
        return self._render(canonical=False)


@dataclass(frozen=True)
class Intersect(_SetOperation):
    left: Expression
    right: Expression
    _opname = "intersect"


@dataclass(frozen=True)
class Union(_SetOperation):
    left: Expression
    right: Expression
    _opname = "union"


@dataclass(frozen=True)
class Difference(_SetOperation):
    left: Expression
    right: Expression
    _opname = "difference"


# ----------------------------------------------------------------------
# Builders — the public construction API
# ----------------------------------------------------------------------
def rel(name: str) -> RelationRef:
    """Reference the stored relation ``name``."""
    return RelationRef(name)


def select(child: Expression, predicate: Predicate) -> Select:
    """Selection with a predicate built from :mod:`repro.relational.predicate`."""
    return Select(child, predicate)


def project(child: Expression, attrs: Sequence[str]) -> Project:
    """Duplicate-eliminating projection onto ``attrs``."""
    return Project(child, tuple(attrs))


def join(
    left: Expression,
    right: Expression,
    on: Sequence[tuple[str, str] | str] | str,
) -> Join:
    """Equi-join; ``on`` items may be ``"a"`` (same name both sides) or ``("a", "b")``."""
    if isinstance(on, str):
        on = (on,)
    pairs = tuple((p, p) if isinstance(p, str) else (p[0], p[1]) for p in on)
    return Join(left, right, pairs)


def union(left: Expression, right: Expression) -> Union:
    """Set union of attribute-compatible expressions."""
    return Union(left, right)


def difference(left: Expression, right: Expression) -> Difference:
    """Set difference of attribute-compatible expressions."""
    return Difference(left, right)


def intersect(left: Expression, right: Expression) -> Intersect:
    """Set intersection of attribute-compatible expressions."""
    return Intersect(left, right)
