"""Exact relational-algebra evaluation — the ground-truth baseline.

Evaluates an expression over the *full* stored relations using the very same
charged primitives as the sampling engine (scan, external sort, sorted
merge), so exact evaluation is both the correctness oracle for the
estimators and the cost baseline a time quota is traded against.

The algorithms mirror Figures 4.3–4.7 of the paper: every binary operator
writes its inputs to temporary files, sorts them, and merges; projection
sorts and scans for duplicates. Unlike the estimator engine, the exact
evaluator executes Union and Difference directly (the estimator replaces
them with Intersect via inclusion–exclusion).
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import ExpressionError
from repro.relational.expression import (
    Difference,
    Expression,
    Intersect,
    Join,
    Project,
    RelationRef,
    Select,
    Union,
)
from repro.relational.operators import (
    apply_select,
    dedupe_sorted,
    external_sort,
    key_for_positions,
    merge_difference,
    merge_intersect,
    merge_join,
    merge_union,
    project_rows,
    whole_row_key,
)
from repro.storage.block import Row
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind, MachineProfile


class ExactEvaluator:
    """Evaluates RA expressions exactly, charging the supplied charger."""

    def __init__(
        self,
        catalog: Catalog,
        charger: CostCharger,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self.catalog = catalog
        self.charger = charger
        self.block_size = block_size

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def rows(self, expr: Expression) -> list[Row]:
        """All output tuples of ``expr`` (set semantics for set operators)."""
        expr.schema(self.catalog)  # validate before doing any charged work
        return self._eval(expr)

    def count(self, expr: Expression) -> int:
        """``COUNT(expr)`` — the quantity the paper's estimators target."""
        return len(self.rows(expr))

    # ------------------------------------------------------------------
    # Recursive evaluation
    # ------------------------------------------------------------------
    def _bf(self, schema: Schema) -> int:
        return schema.blocking_factor(self.block_size)

    def _eval(self, expr: Expression) -> list[Row]:
        if isinstance(expr, RelationRef):
            relation = self.catalog.get(expr.name)
            return list(relation.scan(self.charger))
        if isinstance(expr, Select):
            rows = self._eval(expr.child)
            schema = expr.schema(self.catalog)
            # Shared compilation cache: repeated evaluations of the same
            # formula (oracle checks inside experiment batteries) bind once.
            from repro.kernels.cache import compiled_predicate

            predicate = compiled_predicate(expr.predicate, schema).row_fn
            return apply_select(rows, predicate, self.charger, self._bf(schema))
        if isinstance(expr, Project):
            return self._eval_project(expr)
        if isinstance(expr, Join):
            return self._eval_join(expr)
        if isinstance(expr, (Intersect, Union, Difference)):
            return self._eval_setop(expr)
        raise ExpressionError(f"unknown expression node {type(expr).__name__}")

    def _spool_inputs(self, *row_lists: list[Row]) -> None:
        """Charge step (1) of the binary algorithms: write inputs to temp files."""
        total = sum(len(rows) for rows in row_lists)
        if total:
            self.charger.charge(CostKind.TEMP_WRITE, total)

    def _eval_project(self, expr: Project) -> list[Row]:
        child_rows = self._eval(expr.child)
        child_schema = expr.child.schema(self.catalog)
        positions = [child_schema.index_of(a) for a in expr.attrs]
        projected = project_rows(child_rows, positions)
        self._spool_inputs(projected)
        ordered = external_sort(projected, whole_row_key, self.charger)
        schema = expr.schema(self.catalog)
        distinct, _occupancy = dedupe_sorted(ordered, self.charger, self._bf(schema))
        return distinct

    def _eval_join(self, expr: Join) -> list[Row]:
        left_rows = self._eval(expr.left)
        right_rows = self._eval(expr.right)
        left_schema = expr.left.schema(self.catalog)
        right_schema = expr.right.schema(self.catalog)
        left_key = [left_schema.index_of(a) for a, _ in expr.on]
        right_key = [right_schema.index_of(b) for _, b in expr.on]
        self._spool_inputs(left_rows, right_rows)
        left_sorted = external_sort(
            left_rows, key_for_positions(left_key), self.charger
        )
        right_sorted = external_sort(
            right_rows, key_for_positions(right_key), self.charger
        )
        schema = expr.schema(self.catalog)
        return merge_join(
            left_sorted,
            right_sorted,
            left_key,
            right_key,
            self.charger,
            self._bf(schema),
        )

    def _eval_setop(self, expr: Intersect | Union | Difference) -> list[Row]:
        left_rows = self._eval(expr.left)
        right_rows = self._eval(expr.right)
        self._spool_inputs(left_rows, right_rows)
        left_sorted = external_sort(left_rows, whole_row_key, self.charger)
        right_sorted = external_sort(right_rows, whole_row_key, self.charger)
        bf = self._bf(expr.schema(self.catalog))
        if isinstance(expr, Intersect):
            return merge_intersect(left_sorted, right_sorted, self.charger, bf)
        if isinstance(expr, Union):
            return merge_union(left_sorted, right_sorted, self.charger, bf)
        return merge_difference(left_sorted, right_sorted, self.charger, bf)


def count_exact(expr: Expression, catalog: Catalog) -> int:
    """Uncharged exact COUNT — the free ground-truth oracle for tests.

    Runs the full evaluator against a zero-cost machine profile, so no
    simulated time elapses anywhere.
    """
    free = CostCharger(MachineProfile.uniform(0.0))
    return ExactEvaluator(catalog, free).count(expr)


def rows_exact(expr: Expression, catalog: Catalog) -> list[Row]:
    """Uncharged exact output rows (tests and ground-truth comparisons)."""
    free = CostCharger(MachineProfile.uniform(0.0))
    return ExactEvaluator(catalog, free).rows(expr)
