"""Deterministic, seed-replayable fault injection.

The paper's promise is that a time-constrained query returns *an* answer at
the deadline; this package supplies the adversary that promise is tested
against. A :class:`FaultPlan` declares, per session, the probability (or
fixed schedule) of injected block-read errors, slow reads that charge extra
simulated time, and stage overruns. A :class:`FaultInjector` executes the
plan from its own RNG stream — derived from the session RNG's seed material
without consuming the session stream — so a faulted run is bit-identical
given the same seeds, and a plan with zero probabilities changes nothing at
all (no injector is even built).

Faults surface as :class:`repro.errors.InjectedFault` (a ``StorageError``)
inside the storage layer; the staged executor salvages them per stage
(discard the partial stage, keep the last consistent estimate, charge the
wasted time) and :class:`repro.server.QueryServer` retries or degrades.
Every injected and salvaged fault emits a registered trace event
(:class:`FaultInjected`, :class:`FaultSalvaged`).
"""

from repro.faults.events import FaultInjected, FaultSalvaged
from repro.faults.injector import FaultInjector, FaultRecord, derive_fault_rng
from repro.faults.plan import FaultPlan

__all__ = [
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSalvaged",
    "derive_fault_rng",
]
