"""Registered trace events of the fault-injection subsystem.

Both events go through :func:`repro.observability.register_event_type`, so
JSONL traces of chaos runs round-trip into typed events exactly like the
core run loop's and the server's do. One injected fault always produces one
:class:`FaultInjected`; if the executor recovers it (per-stage salvage) a
matching :class:`FaultSalvaged` follows with the wasted time and the action
taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.observability.trace import TraceEvent, register_event_type


@register_event_type
@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The injector fired: a read error, slow read, or stage overrun."""

    kind: ClassVar[str] = "fault_injected"
    stage: int = 0
    fault_kind: str = ""
    relation: str = ""
    block_id: int | None = None
    penalty_seconds: float = 0.0
    scheduled: bool = False
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class FaultSalvaged(TraceEvent):
    """The executor recovered an injected fault at a stage boundary."""

    kind: ClassVar[str] = "fault_salvaged"
    stage: int = 0
    fault_kind: str = ""
    wasted_seconds: float = 0.0
    action: str = ""  # "retry" | "finish"
    clock: float = 0.0
