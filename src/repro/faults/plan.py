"""Fault plans — the declarative half of the injection subsystem."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

SALVAGE_MODES = ("continue", "finish")


@dataclass(frozen=True)
class FaultPlan:
    """Per-session schedule of injected failures.

    All probabilities are evaluated on the injector's own RNG stream, one
    decision per injection point, so the schedule is deterministic given
    the session seed. An all-zero plan (the default) is *inactive*: no
    injector is constructed and execution is byte-for-byte the unfaulted
    path.

    Parameters
    ----------
    read_error_prob:
        Probability that one block read raises
        :class:`~repro.errors.InjectedFault` (after its I/O was charged —
        the time is wasted, as with a real failed read that must be
        retried).
    slow_read_prob / slow_read_factor:
        Probability that one block read stalls; a stall charges
        ``slow_read_factor`` extra block-read times of raw penalty
        (no jitter) against the quota.
    stage_overrun_prob / stage_overrun_seconds:
        Probability that a completed stage is hit with a trailing stall of
        ``stage_overrun_seconds`` — modelling post-stage work (flush,
        checkpoint) blowing through the deadline.
    fail_stages:
        Stage indices whose *first* attempt deterministically fails on its
        first block read — the scheduled half of the plan, used by the
        salvage tests to place a fault at an exact stage.
    fail_shards:
        Shard indices (of a :class:`~repro.storage.partitioned.
        PartitionedHeapFile`) whose first block read deterministically
        fails, once per shard per session — the shard-targeted analogue of
        ``fail_stages``. Fires without consuming the fault RNG stream, so
        probabilistic schedules replay identically with or without shard
        targets, and fires on the partitioned *and* unpartitioned read
        paths alike (reads of plain heap files, which have no shards, are
        never affected).
    max_injections:
        Cap on the total number of injected faults (errors + stalls +
        overruns); ``None`` is unlimited.
    salvage:
        What the executor does after salvaging a fault: ``"continue"``
        (default) retries with the next stage; ``"finish"`` ends the run
        immediately with a ``degraded`` termination.
    seed_salt:
        Mixed into the derived fault RNG so several plans over one session
        seed draw independent fault streams.
    """

    read_error_prob: float = 0.0
    slow_read_prob: float = 0.0
    slow_read_factor: float = 4.0
    stage_overrun_prob: float = 0.0
    stage_overrun_seconds: float = 0.0
    fail_stages: tuple[int, ...] = ()
    fail_shards: tuple[int, ...] = ()
    max_injections: int | None = None
    salvage: str = "continue"
    seed_salt: int = 0

    def __post_init__(self) -> None:
        for name in ("read_error_prob", "slow_read_prob", "stage_overrun_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        if self.slow_read_factor < 0:
            raise ReproError(
                f"slow_read_factor must be non-negative: {self.slow_read_factor}"
            )
        if self.stage_overrun_seconds < 0:
            raise ReproError(
                "stage_overrun_seconds must be non-negative: "
                f"{self.stage_overrun_seconds}"
            )
        if self.salvage not in SALVAGE_MODES:
            raise ReproError(
                f"salvage must be one of {SALVAGE_MODES}, got {self.salvage!r}"
            )
        if self.max_injections is not None and self.max_injections < 0:
            raise ReproError(
                f"max_injections must be non-negative: {self.max_injections}"
            )
        if self.seed_salt < 0:
            raise ReproError(f"seed_salt must be non-negative: {self.seed_salt}")
        if any(s < 1 for s in self.fail_stages):
            raise ReproError(f"fail_stages must be >= 1: {self.fail_stages}")
        if any(s < 0 for s in self.fail_shards):
            raise ReproError(f"fail_shards must be >= 0: {self.fail_shards}")
        # Normalise so plan equality is schedule equality.
        object.__setattr__(self, "fail_stages", tuple(self.fail_stages))
        object.__setattr__(self, "fail_shards", tuple(self.fail_shards))

    @property
    def active(self) -> bool:
        """Whether this plan can inject anything at all."""
        if self.max_injections == 0:
            return False
        return bool(
            self.read_error_prob > 0
            or self.slow_read_prob > 0
            or self.stage_overrun_prob > 0
            or self.fail_stages
            or self.fail_shards
        )
