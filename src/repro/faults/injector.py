"""The fault injector — the imperative half of the injection subsystem.

One :class:`FaultInjector` lives inside one session (threaded through
:class:`~repro.engine.plan.StagedPlan` into every
:class:`~repro.engine.nodes.StagedScan`). Storage calls
:meth:`FaultInjector.on_block_read` after each charged block read; the
executor calls :meth:`begin_stage` before every stage attempt and
:meth:`maybe_overrun` after a stage completes.

Determinism contract: the injector draws exclusively from its *own* RNG,
derived from the session RNG's seed material via
:func:`derive_fault_rng` — the session stream is never consumed, so
sampling, cost jitter, and Goodman draws are bit-identical with the
injector present or absent. Probability draws happen in a fixed order
(read-error, then slow-read, per block; one overrun draw per completed
stage), so the same seeds replay the same faults.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InjectedFault
from repro.faults.events import FaultInjected
from repro.faults.plan import FaultPlan
from repro.observability.trace import NULL_SINK, TraceSink
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind


def derive_fault_rng(
    rng: np.random.Generator, salt: int = 0
) -> np.random.Generator:
    """An independent RNG keyed on ``rng``'s seed material.

    Reads the generator's :class:`~numpy.random.SeedSequence` (pure seed
    material — reading it does not advance the stream) and folds ``salt``
    in, so the fault stream is reproducible from the session seed alone yet
    statistically independent of every draw the session makes.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:  # exotic bit generator: fall back to the salt alone
        return np.random.default_rng(salt)
    state = seed_seq.generate_state(4).tolist()
    return np.random.default_rng(np.random.SeedSequence([salt, *state]))


class FaultRecord:
    """One salvaged fault, as recorded on the run report."""

    __slots__ = (
        "stage",
        "fault_kind",
        "message",
        "relation",
        "block_id",
        "wasted_seconds",
        "action",
    )

    def __init__(
        self,
        stage: int,
        fault_kind: str,
        message: str,
        relation: str | None = None,
        block_id: int | None = None,
        wasted_seconds: float = 0.0,
        action: str = "retry",
    ) -> None:
        self.stage = stage
        self.fault_kind = fault_kind
        self.message = message
        self.relation = relation
        self.block_id = block_id
        self.wasted_seconds = wasted_seconds
        self.action = action

    def __repr__(self) -> str:
        return (
            f"FaultRecord(stage={self.stage}, kind={self.fault_kind!r}, "
            f"wasted={self.wasted_seconds:.6f}s, action={self.action!r})"
        )


class FaultInjector:
    """Executes one :class:`FaultPlan` against one session (see module docs)."""

    def __init__(
        self,
        plan: FaultPlan,
        rng: np.random.Generator,
        sink: TraceSink | None = None,
    ) -> None:
        self.plan = plan
        self.rng = rng
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        self.injected_read_errors = 0
        self.injected_slow_reads = 0
        self.injected_overruns = 0
        self._stage = 0
        self._attempts: dict[int, int] = {}
        self._forced_fired = False
        self._shards_fired: set[int] = set()

    @classmethod
    def for_session(
        cls,
        plan: FaultPlan,
        session_rng: np.random.Generator,
        sink: TraceSink | None = None,
    ) -> "FaultInjector":
        """Build an injector whose stream derives from the session RNG."""
        return cls(plan, derive_fault_rng(session_rng, plan.seed_salt), sink)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return (
            self.injected_read_errors
            + self.injected_slow_reads
            + self.injected_overruns
        )

    def _exhausted(self) -> bool:
        cap = self.plan.max_injections
        return cap is not None and self.total_injected >= cap

    def begin_stage(self, stage: int) -> None:
        """Mark the start of one stage *attempt* (retries re-enter here)."""
        self._stage = stage
        self._attempts[stage] = self._attempts.get(stage, 0) + 1
        self._forced_fired = False

    def attempts(self, stage: int) -> int:
        return self._attempts.get(stage, 0)

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def on_block_read(
        self,
        relation: str,
        block_id: int,
        charger: CostCharger,
        shard: int | None = None,
    ) -> None:
        """Hook called by the storage layer after one charged block read.

        May raise :class:`InjectedFault` (read error — the charged I/O time
        is already wasted) or charge a raw slow-read penalty on ``charger``
        (which itself may raise ``QuotaExpired`` under an armed hard
        deadline, exactly like genuinely slow I/O would). ``shard`` is the
        block's shard index when the relation is partitioned (``None``
        otherwise); the scheduled ``fail_shards`` faults key on it.
        """
        plan = self.plan
        if (
            plan.fail_stages
            and self._stage in plan.fail_stages
            and self._attempts.get(self._stage, 0) == 1
            and not self._forced_fired
            and not self._exhausted()
        ):
            self._forced_fired = True
            self._raise_read_error(relation, block_id, charger, scheduled=True)
        if (
            plan.fail_shards
            and shard is not None
            and shard in plan.fail_shards
            and shard not in self._shards_fired
            and not self._exhausted()
        ):
            # Once per shard per session, without consuming the RNG stream:
            # probabilistic fault schedules replay identically regardless of
            # shard targets. Salvage retries re-read the shard unharmed.
            self._shards_fired.add(shard)
            self._raise_read_error(relation, block_id, charger, scheduled=True)
        if self._exhausted():
            return
        if plan.read_error_prob > 0 and float(
            self.rng.random()
        ) < plan.read_error_prob:
            self._raise_read_error(relation, block_id, charger, scheduled=False)
        if plan.slow_read_prob > 0 and float(
            self.rng.random()
        ) < plan.slow_read_prob:
            self.injected_slow_reads += 1
            penalty = plan.slow_read_factor * charger.profile.rate(
                CostKind.BLOCK_READ
            )
            self.sink.emit(
                FaultInjected(
                    stage=self._stage,
                    fault_kind="slow_read",
                    relation=relation,
                    block_id=block_id,
                    penalty_seconds=penalty,
                    clock=charger.clock.now(),
                )
            )
            charger.penalty(penalty)

    def _raise_read_error(
        self,
        relation: str,
        block_id: int,
        charger: CostCharger,
        scheduled: bool,
    ) -> None:
        self.injected_read_errors += 1
        self.sink.emit(
            FaultInjected(
                stage=self._stage,
                fault_kind="read_error",
                relation=relation,
                block_id=block_id,
                scheduled=scheduled,
                clock=charger.clock.now(),
            )
        )
        raise InjectedFault(
            f"injected read error on relation {relation!r} "
            f"block {block_id} (stage {self._stage})",
            fault_kind="read_error",
            relation=relation,
            block_id=block_id,
            stage=self._stage,
        )

    def maybe_overrun(self, stage: int, charger: CostCharger) -> float:
        """Possibly stall after a completed stage; returns the penalty.

        The penalty is charged raw (no rate, no jitter) and may raise
        ``QuotaExpired`` under an armed hard deadline — the existing
        mid-stage-interrupt machinery then handles it.
        """
        plan = self.plan
        if plan.stage_overrun_prob <= 0 or self._exhausted():
            return 0.0
        if float(self.rng.random()) >= plan.stage_overrun_prob:
            return 0.0
        self.injected_overruns += 1
        penalty = plan.stage_overrun_seconds
        self.sink.emit(
            FaultInjected(
                stage=stage,
                fault_kind="stage_overrun",
                penalty_seconds=penalty,
                clock=charger.clock.now(),
            )
        )
        charger.penalty(penalty)
        return penalty
