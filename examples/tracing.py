"""Tracing — capture a run's structured event stream and replay it.

Every time-constrained run emits typed events from every layer — the
strategy's stage sizing, the executor's stage lifecycle, the plan's scan
and operator advances, the selectivity revisions — into whatever sink the
caller passes. This example records one run in memory, narrates its stages
from the events alone, then writes the same run to a JSONL file and parses
it back into typed events.

Run:  python examples/tracing.py
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    Database,
    JsonlSink,
    MachineProfile,
    OneAtATimeInterval,
    RecordingSink,
    cmp,
    rel,
    select,
)
from repro.observability import (
    FractionChosen,
    QueryEnd,
    ScanAdvance,
    SelectivityRevision,
    StageEnd,
    read_jsonl_trace,
)


def build_database(seed: int = 7) -> Database:
    db = Database(profile=MachineProfile.sun3_60(), seed=seed)
    db.create_relation(
        "orders",
        [("order_id", "int"), ("qty", "int")],
        rows=((i, i % 100) for i in range(20_000)),
        block_size=256,
    )
    return db


def main() -> None:
    db = build_database()
    query = select(rel("orders"), cmp("qty", ">", 90))
    quota = 10.0

    # ------------------------------------------------------------------
    # 1. Record a run in memory and narrate it from the events alone.
    # ------------------------------------------------------------------
    sink = RecordingSink()
    result = db.estimate(query, quota=quota, seed=3, sink=sink)

    print(f"COUNT estimate {result.value:.0f} in {quota:g}s "
          f"({result.stages} stages, {len(sink)} trace events)\n")

    sizing = {e.stage: e for e in sink.of_kind(FractionChosen)}
    for end in sink.of_kind(StageEnd):
        chose = sizing[end.stage]
        flag = "" if end.completed_in_time else "  <-- overspent"
        print(
            f"stage {end.stage}: bisected {chose.bisection_iterations}x to "
            f"f={end.fraction:.4f}, read {end.blocks_read} blocks in "
            f"{end.duration:.2f}s, estimate {end.estimate_value:.0f}{flag}"
        )

    print("\nselectivity revisions (Figure 3.3):")
    for rev in sink.of_kind(SelectivityRevision):
        print(
            f"  stage {rev.stage} {rev.operator}: {rev.tuples} tuples / "
            f"{rev.points} points  (sel was {rev.sel_prev:.3f})"
        )

    blocks = sum(e.new_blocks for e in sink.of_kind(ScanAdvance))
    terminated = sink.of_kind(QueryEnd)[0].termination
    print(f"\ntotal sampled blocks {blocks}, termination: {terminated}")

    # ------------------------------------------------------------------
    # 2. Same run to a JSONL file, then back into typed events.
    # ------------------------------------------------------------------
    path = os.path.join(tempfile.mkdtemp(), "trace.jsonl")
    with JsonlSink(path) as jsonl:
        db.estimate(query, quota=quota, seed=3, sink=jsonl)
        written = jsonl.events_written

    replayed = read_jsonl_trace(path)
    assert [e.to_dict() for e in replayed] == [e.to_dict() for e in sink]
    print(f"\n{written} events round-tripped through {path}")


if __name__ == "__main__":
    main()
