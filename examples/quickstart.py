"""Quickstart — estimate COUNT queries under a hard time quota.

Builds a small sales database on the simulated 1989-class machine, then
answers three COUNT queries: exactly (paying the full evaluation cost) and
approximately within a quota, showing the paper's trade: a bounded response
time for a confidence interval instead of an exact answer.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    MachineProfile,
    OneAtATimeInterval,
    cmp,
    join,
    rel,
    select,
)


def build_database(seed: int = 7) -> Database:
    db = Database(profile=MachineProfile.sun3_60(), seed=seed)
    rng = np.random.default_rng(seed)

    n_orders, n_parts = 20_000, 5_000
    db.create_relation(
        "orders",
        [("order_id", "int"), ("part_id", "int"), ("qty", "int")],
        rows=(
            (i, int(rng.integers(0, n_parts)), int(rng.integers(1, 100)))
            for i in range(n_orders)
        ),
        block_size=256,
    )
    db.create_relation(
        "parts",
        [("part_id", "int"), ("weight", "int")],
        rows=((p, int(rng.integers(1, 50))) for p in range(n_parts)),
        block_size=256,
    )
    return db


def main() -> None:
    db = build_database()
    queries = {
        "large orders (qty > 90)": select(rel("orders"), cmp("qty", ">", 90)),
        "orders of heavy parts": join(
            select(rel("parts"), cmp("weight", ">", 45)),
            rel("orders"),
            on=["part_id"],
        ),
    }

    for name, query in queries.items():
        exact, exact_cost = db.count_timed(query)
        quota = exact_cost / 10  # give the estimator a tenth of the time
        result = db.estimate(
            query, quota=quota, strategy=OneAtATimeInterval(d_beta=24)
        )
        lo, hi = result.confidence_interval(0.95)
        print(f"{name}:")
        print(f"  exact COUNT          = {exact}  (cost {exact_cost:.1f}s)")
        print(
            f"  estimate in {quota:.1f}s   = {result.value:.0f}  "
            f"95% CI [{lo:.0f}, {hi:.0f}]"
        )
        print(
            f"  run: {result.stages} stages, {result.blocks} blocks, "
            f"utilization {result.utilization:.0%}, "
            f"overspent={result.overspent}"
        )
        print()


if __name__ == "__main__":
    main()
