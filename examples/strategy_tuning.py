"""Choosing a time-control strategy and its risk parameter.

Walks the three strategies of Section 3.3 over the paper's join workload and
prints the operating trade-off each setting buys: risk of overspending vs
evaluated sample size (i.e., estimate precision). This is the decision a
deployer of the library actually has to make; the paper's answer — One-at-a-
Time-Interval with a generous d_β — falls out of the numbers.

Run:  python examples/strategy_tuning.py        (~30 s of simulated sweeps)
"""

from __future__ import annotations

from repro import FixedFractionHeuristic, OneAtATimeInterval, SingleInterval
from repro.experiments.runner import aggregate, run_cell
from repro.workloads.paper import make_join_setup

RUNS = 40


def main() -> None:
    setup = make_join_setup(seed=11)
    print(f"workload: {setup.describe()}")
    print(f"{RUNS} runs per configuration\n")
    print(
        f"{'strategy':<28}{'risk%':>6}{'stages':>8}{'blocks':>8}"
        f"{'util%':>7}{'rel.err':>9}"
    )
    configurations = [
        ("one-at-a-time, d_b=0", lambda: OneAtATimeInterval(d_beta=0.0)),
        ("one-at-a-time, d_b=12", lambda: OneAtATimeInterval(d_beta=12.0)),
        ("one-at-a-time, d_b=24", lambda: OneAtATimeInterval(d_beta=24.0)),
        ("one-at-a-time, d_b=72", lambda: OneAtATimeInterval(d_beta=72.0)),
        ("single-interval, d_a=0", lambda: SingleInterval(d_alpha=0.0)),
        ("single-interval, d_a=2", lambda: SingleInterval(d_alpha=2.0)),
        ("heuristic, gamma=0.5", lambda: FixedFractionHeuristic(gamma=0.5)),
        ("heuristic, gamma=0.9", lambda: FixedFractionHeuristic(gamma=0.9)),
    ]
    for label, factory in configurations:
        results = run_cell(setup, factory, runs=RUNS, seed0=7_000)
        cell = aggregate(label, results, true_count=setup.exact_count)
        err = (
            f"{cell.mean_relative_error:9.3f}"
            if cell.mean_relative_error is not None
            else "        -"
        )
        print(
            f"{label:<28}{cell.risk_pct:6.0f}{cell.stages:8.2f}"
            f"{cell.blocks:8.1f}{cell.utilization_pct:7.0f}{err}"
        )
    print(
        "\nreading guide: pick the row with acceptable risk and the most"
        "\nblocks — more evaluated blocks means a tighter estimate. The"
        "\nstatistical strategies dominate the fixed-share heuristic, and"
        "\nmoderate d_beta buys near-zero risk for little sample-size cost"
        "\n(the paper's conclusion)."
    )


if __name__ == "__main__":
    main()
