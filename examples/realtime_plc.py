"""Real-time monitoring — the paper's PLC motivation ([OzHO 88]).

The paper's authors were building "a database system for programmable logic
controllers": a control loop issues aggregate queries against live process
data and *must* respond within its cycle deadline — a late answer is
worthless. This example simulates that regime on a modern-speed machine
profile (millisecond quotas), running a battery of periodic COUNT queries
against a sensor-reading relation and reporting the deadline statistics the
real-time database literature cares about ([AbGM 88]): deadline misses,
response-time distribution, and the accuracy bought within each cycle.

Run:  python examples/realtime_plc.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    HardDeadline,
    MachineProfile,
    OneAtATimeInterval,
    cmp,
    rel,
    select,
)

CYCLE_QUOTA = 0.004  # 4 ms control-cycle budget per query
CYCLES = 120


def build_plant_database(seed: int = 17) -> Database:
    """400 000 sensor readings from a simulated plant."""
    db = Database(profile=MachineProfile.modern(), seed=seed)
    rng = np.random.default_rng(seed)
    n = 400_000
    db.create_relation(
        "readings",
        [("sensor", "int"), ("value", "int"), ("status", "int")],
        rows=(
            (
                int(rng.integers(0, 512)),
                int(rng.normal(500, 120)),
                int(rng.random() < 0.02),  # ~2% readings flag a fault
            )
            for i in range(n)
        ),
        block_size=512,
    )
    return db


def main() -> None:
    db = build_plant_database()
    true_faults = db.count(select(rel("readings"), cmp("status", "==", 1)))
    true_overtemp = db.count(select(rel("readings"), cmp("value", ">", 800)))
    print(f"plant state: {true_faults} fault readings, "
          f"{true_overtemp} over-temperature readings")
    print(f"control cycle budget per query: {CYCLE_QUOTA * 1e3:.0f} ms\n")

    checks = {
        "fault-rate check": (
            select(rel("readings"), cmp("status", "==", 1)),
            true_faults,
        ),
        "over-temperature check": (
            select(rel("readings"), cmp("value", ">", 800)),
            true_overtemp,
        ),
    }

    for name, (query, truth) in checks.items():
        misses = 0
        errors = []
        blocks = []
        for cycle in range(CYCLES):
            result = db.estimate(
                query,
                quota=CYCLE_QUOTA,
                strategy=OneAtATimeInterval(d_beta=24),
                stopping=HardDeadline(),
                seed=1000 + cycle,
            )
            if result.overspent or result.estimate is None:
                misses += 1
                continue
            if truth:
                errors.append(abs(result.value - truth) / truth)
            blocks.append(result.blocks)
        print(f"{name}:")
        print(f"  cycles run          : {CYCLES}")
        print(f"  deadline misses     : {misses} "
              f"({100 * misses / CYCLES:.1f}%)")
        if errors:
            print(f"  mean relative error : {np.mean(errors):.1%}")
            print(f"  p95 relative error  : {np.percentile(errors, 95):.1%}")
        if blocks:
            print(f"  blocks per cycle    : {np.mean(blocks):.0f}")
        print()

    print(
        "Fixing per-query response times this way is what makes whole-"
        "transaction deadlines schedulable (the paper's [AbMo 88] use case)."
    )


if __name__ == "__main__":
    main()
