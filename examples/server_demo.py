"""The serving layer — many clients, one deadline-aware database server.

Section 1's motivation is a *multiuser* database: "accurate estimates for
transaction execution times become possible" once each query's execution
time is pinned to its quota. This example puts that to work as a server.
One Poisson request stream arrives at twice the machine's service capacity
and is served three ways:

* ``AdmitAll``      — no admission control: doomed work burns server time
                      and misses its deadline anyway;
* ``RejectInfeasible`` — requests whose budget cannot cover one useful
                      sampling stage are turned away at the door;
* ``DegradeInfeasible`` — same test, but infeasible requests get an instant
                      zero-sampling answer from prestored statistics (a
                      wide confidence interval instead of a rejection).

Everything runs on the simulated clock, so the run is deterministic.

Run:  python examples/server_demo.py
"""

from __future__ import annotations

from repro.realtime import QueryTask, run_transaction
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.server import (
    AdmitAll,
    DegradeInfeasible,
    QueryServer,
    RejectInfeasible,
)
from repro.server.workload import (
    demo_database,
    open_loop_requests,
    selection_mix,
)

TUPLES = 2_000
REQUESTS = 40
QUOTA = 2.0
OVERLOAD = 2.0
SEED = 7


def serve(policy) -> QueryServer:
    database = demo_database(seed=SEED, tuples=TUPLES)
    server = QueryServer(database, policy=policy)
    server.process(
        open_loop_requests(
            count=REQUESTS,
            quota=QUOTA,
            overload=OVERLOAD,
            make_query=selection_mix(TUPLES),
            tuples=TUPLES,
            seed=SEED,
        )
    )
    return server


def main() -> None:
    print(
        f"one request stream: {REQUESTS} requests, quota {QUOTA:g}s, "
        f"arriving at {OVERLOAD:g}x capacity\n"
    )
    for policy in (AdmitAll(), RejectInfeasible(), DegradeInfeasible()):
        server = serve(policy)
        print(f"--- {policy.describe()} ---")
        print(server.metrics.render())
        print()

    # The same serving layer also hosts transactions: queries sharing one
    # deadline, budgeted by the feedback allocator, each passing through
    # admission control on its way to the machine.
    database = demo_database(seed=SEED, tuples=TUPLES)
    server = QueryServer(database, policy=DegradeInfeasible())
    transaction = [
        QueryTask("recent", select(rel("r1"), cmp("a", "<", 400))),
        QueryTask("bulk", select(rel("r1"), cmp("a", "<", 1_600)), weight=2.0),
        QueryTask("overlap", select(rel("r2"), cmp("a", "<", 1_000))),
    ]
    result = run_transaction(server, transaction, deadline=6.0, seed=11)
    print("--- transaction through the serving layer ---")
    print(result.summary())
    for name, quota in result.quotas.items():
        print(f"  {name}: granted {quota:.3f}s")


if __name__ == "__main__":
    main()
