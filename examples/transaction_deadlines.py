"""Transaction deadlines — the paper's multi-user real-time use case.

Section 1: "By precisely fixing the execution times of database queries in a
transaction, accurate estimates for transaction execution times become
possible. This in turn plays an important role in minimizing the number of
transactions that miss their deadlines [AbMo 88]."

This example runs a monitoring transaction — four aggregate queries sharing
one deadline — many times under two budgeting policies and compares their
deadline-miss rates: a static weight-proportional split versus feedback
budgeting that rolls early finishers' leftover time forward.

Run:  python examples/transaction_deadlines.py
"""

from __future__ import annotations

import numpy as np

from repro import Database, ErrorConstrained, MachineProfile, cmp, rel, select
from repro.estimation.aggregates import avg_of, sum_of
from repro.realtime import (
    FeedbackAllocator,
    ProportionalAllocator,
    QueryTask,
    TransactionScheduler,
)

DEADLINE = 4.0
TRIALS = 30


def build_database(seed: int = 31) -> Database:
    db = Database(profile=MachineProfile.sun3_60(), seed=seed)
    rng = np.random.default_rng(seed)
    db.create_relation(
        "events",
        [("id", "int"), ("severity", "int"), ("latency", "int")],
        rows=(
            (i, int(rng.integers(0, 10)), int(rng.lognormal(3.0, 0.8)))
            for i in range(30_000)
        ),
        block_size=256,
    )
    return db


def monitoring_transaction() -> list[QueryTask]:
    return [
        QueryTask("critical", select(rel("events"), cmp("severity", ">=", 8))),
        QueryTask("warnings", select(rel("events"), cmp("severity", "==", 5))),
        QueryTask(
            "latency_sum",
            select(rel("events"), cmp("severity", ">=", 8)),
            aggregate=sum_of("latency"),
            weight=2.0,
        ),
        QueryTask(
            "mean_latency", rel("events"), aggregate=avg_of("latency")
        ),
    ]


def run_policy(db: Database, allocator_factory, label: str) -> None:
    true_critical = db.count(monitoring_transaction()[0].expr)
    misses = 0
    completed = 0
    elapsed = []
    errors = []
    for trial in range(TRIALS):
        scheduler = TransactionScheduler(
            db,
            allocator=allocator_factory(),
            stopping=ErrorConstrained(target_relative_halfwidth=0.3),
        )
        outcome = scheduler.run(
            monitoring_transaction(), deadline=DEADLINE, seed=500 + trial
        )
        misses += not outcome.met_deadline
        completed += outcome.completed_queries
        elapsed.append(outcome.elapsed)
        # Accuracy of the *last* query, which inherits whatever budget the
        # policy has left for it.
        last = outcome.results.get("mean_latency")
        if last is not None and last.estimate is not None:
            true_mean = db.aggregate(
                monitoring_transaction()[3].expr, avg_of("latency")
            )
            errors.append(abs(last.value - true_mean) / true_mean)
    print(f"{label}:")
    print(f"  deadline misses       : {misses}/{TRIALS} "
          f"({100 * misses / TRIALS:.0f}%)")
    print(f"  queries finished      : {completed / TRIALS:.1f} of 4")
    print(f"  budget actually used  : {np.mean(elapsed):.2f}s of {DEADLINE:g}s")
    if errors:
        print(f"  final-query mean error: {np.mean(errors):.1%}  "
              "(leftover budget → precision)")
    print()


def main() -> None:
    db = build_database()
    print(
        f"transaction: 4 aggregate queries, shared deadline {DEADLINE:g}s, "
        f"{TRIALS} trials per policy\n"
    )
    run_policy(db, ProportionalAllocator, "static proportional budgeting")
    run_policy(db, FeedbackAllocator, "feedback budgeting (leftover rolls forward)")
    print(
        "Per-query time quotas are what make the transaction's completion\n"
        "time predictable at all — the paper's argument for time-constrained\n"
        "query processing in real-time databases."
    )


if __name__ == "__main__":
    main()
