"""The buffer pool — one decode, many readers.

The engine charges *simulated* time per sampled block either way; what the
buffer pool changes is how much *wall-clock* work the host process repeats.
This example walks the contract end to end:

1. the same query, same seed, runs with the pool off and with it on — the
   estimate, stage schedule, and charged simulated time are **bit-equal**
   (the pool is invisible to the paper's controller);
2. a repeat query over the same relation hits blocks the first one
   admitted — ``caches.get("bufferpool").info()`` shows the decode-once sharing;
3. a server stream shares blocks *across requests*, surfacing hit/miss
   counters in ``ServerMetrics``;
4. appending rows evicts the relation's entries from every live pool, so
   no read can ever see stale blocks.

Run:  python examples/bufferpool.py
"""

from __future__ import annotations

from repro import (
    BufferPool,
    Database,
    QueryOptions,
    caches,
    cmp,
    rel,
)
from repro.server import DegradeInfeasible, QueryRequest, QueryServer


def build_database(seed: int = 7) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "orders",
        [("order_id", "int"), ("qty", "int")],
        rows=[(i, (i * 7919) % 200) for i in range(30_000)],
    )
    return db


def signature(result) -> tuple:
    report = result.report
    return (
        result.value,
        None if report.estimate is None else report.estimate.variance,
        tuple((s.fraction, s.duration, s.blocks_read) for s in report.stages),
    )


def main() -> None:
    caches.get("bufferpool").clear()
    panel = rel("orders").where(cmp("qty", "<", 10))

    # -- 1. the pool never changes what the controller sees -----------
    off = build_database().estimate(
        panel, quota=3.0, seed=1, options=QueryOptions(bufferpool=False)
    )
    pool = BufferPool()
    on = build_database().estimate(
        panel, quota=3.0, seed=1, options=QueryOptions(bufferpool=pool)
    )
    assert signature(on) == signature(off)
    print(f"pool off vs on : estimate {on.value:.1f} — bit-identical runs")

    # -- 2. a replayed query shares the first run's decoded blocks ----
    db = build_database()
    db.estimate(panel, quota=20.0, seed=2, options=QueryOptions(bufferpool=True))
    cold = caches.get("bufferpool").info()
    db.estimate(panel, quota=20.0, seed=2, options=QueryOptions(bufferpool=True))
    warm = caches.get("bufferpool").info()
    print(
        f"second query   : {warm.hits - cold.hits} block hits, "
        f"{warm.currsize} blocks resident"
    )

    # -- 3. a server shares blocks across the request stream ----------
    caches.get("bufferpool").clear()
    server = QueryServer(
        build_database(), policy=DegradeInfeasible(), bufferpool=True
    )
    for i in range(4):
        server.serve(QueryRequest(expr=panel, quota=20.0, seed=10 + i))
    metrics = server.metrics
    print(
        f"server stream  : {metrics.buffer_hits} hits / "
        f"{metrics.buffer_misses} misses "
        f"(ratio {metrics.buffer_hit_ratio:.2f})"
    )

    # -- 4. a write evicts the relation everywhere --------------------
    resident = caches.get("bufferpool").info().currsize
    server.database.append_rows("orders", [(10**6, 5)])
    after = caches.get("bufferpool").info()
    print(
        f"append_rows    : {resident} resident -> {after.currsize} "
        f"({after.invalidations} entries invalidated)"
    )


if __name__ == "__main__":
    main()
