"""Explain — see what the logical optimizer does before you spend a quota.

Under a hard time constraint the plan you run *is* the accuracy you get:
cheaper stages mean the bisection of Section 3 can afford a larger sample
fraction inside the same quota. ``Database.explain`` shows this trade
before any sampling happens — the logical plan as written, the rewrite
rules that fired, the optimized plan, and the cost model's predicted
cheapest-stage price for both.

The demo writes a selective predicate *above* a join (the classic
unoptimized form), explains it, then runs the same query with the
optimizer on and off at the same quota to show the rewrite buying sample
blocks — and therefore a tighter confidence interval.

Run:  python examples/explain.py
"""

from __future__ import annotations

from repro import (
    Database,
    MachineProfile,
    QueryOptions,
    caches,
    cmp,
    join,
    rel,
    select,
)


def build_database(seed: int = 7) -> Database:
    db = Database(profile=MachineProfile.sun3_60(), seed=seed)
    db.create_relation(
        "orders",
        [("order_id", "int"), ("qty", "int"), ("part_id", "int")],
        rows=((i, i % 50, i % 40) for i in range(60_000)),
    )
    db.create_relation(
        "parts",
        [("part_id", "int"), ("weight", "int")],
        rows=((i, i % 7) for i in range(800)),
    )
    return db


def main() -> None:
    db = build_database()
    # The selection is written above the join — syntactically natural,
    # physically wasteful: every sampled pair pays the join before the
    # cheap qty filter rejects 90% of them.
    query = select(
        join(rel("orders"), rel("parts"), on=["part_id"]),
        cmp("qty", ">", 44),
    )

    explanation = db.explain(query)
    print(explanation)
    print()

    exact = db.count(query)
    print(f"exact COUNT = {exact}")
    quota = 600.0
    for label, optimize in (("optimizer off", False), ("optimizer on", True)):
        result = db.estimate(
            query, quota=quota, seed=0, options=QueryOptions(optimize=optimize)
        )
        if result.estimate is None:
            print(f"{label}: infeasible within {quota:.0f}s")
            continue
        lo, hi = result.confidence_interval(0.95)
        print(
            f"{label}: estimate {result.value:.0f} "
            f"95% CI [{lo:.0f}, {hi:.0f}] "
            f"({result.stages} stages, {result.blocks} blocks)"
        )

    # Logical plans are cached process-wide by canonical identity, so the
    # repeated estimates above planned the query once.
    info = caches.get("plans").info()
    print(
        f"\nplan cache: {info.hits} hits, {info.misses} misses, "
        f"{info.currsize} entries"
    )


if __name__ == "__main__":
    main()
