"""The synopsis catalog — a dashboard that refreshes the same queries.

The paper's machinery treats every query as its first: trackers start at
Figure 3.3's conservative selectivity 1.0 and relearn the same predicates
run after run. Real workloads repeat — a dashboard refreshing the same
panel, a monitor polling the same condition. This example turns on
``repro.synopses`` and walks the whole lifecycle:

1. a cold run deposits selectivity posteriors and an answer synopsis;
2. warm repeats start from the posterior instead of the conservative
   selectivity-1.0 default, and the server answers an infeasible repeat
   *instantly* from the recorded estimate, with an honest CI from the
   recorded sample variance;
3. a write transaction touches the relation, invalidating its entries;
4. ``refresh_synopses`` re-derives the dropped answer in idle capacity.

Run:  python examples/synopses.py
"""

from __future__ import annotations

from repro import Database, QueryOptions, RecordingSink, cmp, rel
from repro.realtime import QueryTask, WriteTask, run_transaction
from repro.server import DegradeInfeasible, QueryRequest, QueryServer

SYN = QueryOptions(synopses=True)


def build_database(seed: int = 7) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "orders",
        [("order_id", "int"), ("qty", "int")],
        rows=[(i, (i * 7919) % 200) for i in range(30_000)],
    )
    return db


def first_stage_fraction(result) -> float:
    return result.report.stages[0].fraction


def main() -> None:
    db = build_database()
    panel = rel("orders").where(cmp("qty", "<", 10))  # ~5% selectivity

    # -- 1. cold run: the catalog learns ------------------------------
    cold = db.estimate(panel, quota=5.0, seed=1, options=SYN)
    lo, hi = cold.confidence_interval(0.95)
    print(f"cold run : {cold.value:.1f} in [{lo:.1f}, {hi:.1f}], "
          f"{cold.blocks} blocks")
    print("           first-stage fraction", f"{first_stage_fraction(cold):.4f}")
    print("catalog  :", db.synopses.info())

    # -- 2a. warm repeat: posterior-steered stage sizing --------------
    sink = RecordingSink()
    warm = db.estimate(
        panel, quota=5.0, seed=2, options=SYN.replace(sink=sink)
    )
    hit = sink.of_kind("synopsis_hit")[0]
    lo, hi = warm.confidence_interval(0.95)
    print(f"warm run : {warm.value:.1f} in [{lo:.1f}, {hi:.1f}], "
          f"{warm.blocks} blocks")
    print(
        "           first-stage fraction",
        f"{first_stage_fraction(warm):.4f}",
        f"(prior: {hit.prior_points:.0f} pseudo-points,",
        f"mean {hit.prior_mean:.4f})",
    )

    # -- 2b. the server answers an infeasible repeat from the catalog -
    server = QueryServer(db, policy=DegradeInfeasible(), synopses=True)
    served = server.serve(QueryRequest(expr=panel, quota=1e-4, seed=3))
    lo, hi = served.estimate.confidence_interval(0.95)
    print(f"degraded : {served.outcome.value} — {served.reason}")
    print(f"           {served.estimate.value:.1f} in [{lo:.1f}, {hi:.1f}]")

    # -- 3. a write transaction invalidates ---------------------------
    txn = run_transaction(
        server,
        [
            WriteTask("restock", "orders",
                      [(10**6 + i, i % 7) for i in range(500)]),
            QueryTask("recheck", panel),
        ],
        deadline=60.0,
        seed=4,
    )
    print(
        "write txn: met deadline" if txn.met_deadline else "write txn: MISSED",
        "—", db.synopses.info(),
    )

    # -- 4. idle-capacity refresh re-derives dropped answers ----------
    db.append_rows("orders", [(2 * 10**6 + i, i % 3) for i in range(500)])
    pending = db.synopses.info().refresh_pending
    refreshed = server.refresh_synopses(budget=30.0)
    print(f"refresh  : {refreshed}/{pending} queued shapes re-derived")
    print("catalog  :", db.synopses.info())


if __name__ == "__main__":
    main()
