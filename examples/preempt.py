"""Preemptive EDF — a tight deadline interrupts a loose runner.

Run-to-completion EDF has a blind spot: a tight-deadline request that
arrives while a loose-deadline query holds the server waits out the
runner's *whole* remaining budget, and its own window expires in the
queue. With ``REPRO_PREEMPT`` on, the scheduler checkpoints the runner
at its next stage boundary (the staged execution model makes boundaries
pure snapshots), serves the tight request inside its own window, then
resumes the parked run from its banked stages with its residual budget.
Invariant 11 makes the knob safe: suspension is invisible to the run it
suspends, and switch-off serving is byte-identical to the
pre-preemption scheduler. This example walks the surface end to end:

1. preempt **off** — the tight request queues behind the loose runner
   and misses its deadline;
2. preempt **on** — the same stream: the loose runner parks at a stage
   boundary, the tight request answers in time, the loose run resumes
   and still answers; the ``query_preempted`` / ``query_resumed``
   events and `ServerMetrics` counters trace the churn;
3. with no competing arrivals the preemption point never fires — on is
   event-for-event identical to off;
4. ``repro.core.switches.describe()`` reports how the preempt switch
   resolved — the same registry the docs table is generated from.

Run:  python examples/preempt.py
"""

from __future__ import annotations

from repro.core.switches import describe
from repro.observability import RecordingSink
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server import AdmitAll, QueryRequest, QueryServer
from repro.server.workload import demo_database

TUPLES = 1_000


def mixed_stream() -> list[QueryRequest]:
    """A loose 8s intersection, then a tight 4s selection 0.5s later."""
    return [
        QueryRequest(
            expr=intersect(rel("r1"), rel("r2")),
            quota=8.0,
            arrival=0.0,
            seed=11,
            client_id="loose",
        ),
        QueryRequest(
            expr=select(rel("r1"), cmp("a", "<", 600)),
            quota=4.0,
            arrival=0.5,
            seed=22,
            client_id="tight",
        ),
    ]


def serve(preempt: bool, requests: list[QueryRequest]):
    sink = RecordingSink()
    server = QueryServer(
        demo_database(seed=5, tuples=TUPLES),
        policy=AdmitAll(),
        preempt=preempt,
        sink=sink,
    )
    outcomes = {o.request.client_id: o for o in server.process(requests)}
    return server, sink, outcomes


def main() -> None:
    # -- 1. run-to-completion: the tight window dies in the queue ------
    _, _, off = serve(False, mixed_stream())
    print(
        f"preempt off      : loose {off['loose'].outcome.value}, "
        f"tight {off['tight'].outcome.value} — {off['tight'].reason}"
    )

    # -- 2. preempt on: park the runner, serve the window, resume ------
    server, sink, on = serve(True, mixed_stream())
    (parked,) = sink.of_kind("query_preempted")
    (resumed,) = sink.of_kind("query_resumed")
    print(
        f"preempt on       : loose {on['loose'].outcome.value}, "
        f"tight {on['tight'].outcome.value}"
    )
    print(
        f"trace            : parked {parked.request_id} at clock "
        f"{parked.clock:.2f}s with {parked.stages_completed} stage(s) "
        f"banked for {parked.challenger_id}; resumed at "
        f"{resumed.clock:.2f}s with {resumed.residual_budget:.2f}s left"
    )
    print(
        f"metrics          : {server.metrics.preempted} preempted, "
        f"{server.metrics.resumed} resumed — hit-ratio "
        f"{server.metrics.hit_ratio_admitted:.2f} vs run-to-completion 0.50"
    )

    # -- 3. no challenger, no difference: on ≡ off, event for event ----
    solo = mixed_stream()[:1]
    _, on_sink, _ = serve(True, solo)
    _, off_sink, _ = serve(False, solo)
    assert on_sink.events == off_sink.events
    print(
        f"identity         : solo stream preempt on ≡ off "
        f"({len(on_sink.events)} events, byte-identical)"
    )

    # -- 4. one registry explains how the switch resolved --------------
    state = next(s for s in describe() if s.name == "preempt")
    print(
        f"switches         : preempt -> {state.value} "
        f"(source: {state.source}; flip with REPRO_PREEMPT=1 "
        f"or QueryServer(preempt=True))"
    )


if __name__ == "__main__":
    main()
