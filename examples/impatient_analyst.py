"""The "impatient user" — interactive approximate answers that refine.

Section 1 of the paper names the interactive setting directly: "the time
constraint can be set to … minutes (e.g., an interactive environment with an
'impatient' user)". This example plays an analyst exploring a sales dataset:
every query gets an answer within seconds, shown *stage by stage* as the
estimate tightens (the precursor of online aggregation), and stops early the
moment the confidence interval is tight enough — the error-constrained
stopping criterion of Section 3.2.

Run:  python examples/impatient_analyst.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    ErrorConstrained,
    MachineProfile,
    OneAtATimeInterval,
    cmp,
    join,
    rel,
    select,
)


def build_sales_database(seed: int = 23) -> Database:
    db = Database(profile=MachineProfile.sun3_60(), seed=seed)
    rng = np.random.default_rng(seed)
    n_sales, n_stores = 40_000, 2_000
    db.create_relation(
        "sales",
        [("sale_id", "int"), ("store_id", "int"), ("amount", "int")],
        rows=(
            (
                i,
                int(rng.integers(0, n_stores)),
                int(rng.lognormal(4.0, 1.0)),
            )
            for i in range(n_sales)
        ),
        block_size=256,
    )
    db.create_relation(
        "stores",
        [("store_id", "int"), ("region", "int")],
        rows=((s, int(s % 8)) for s in range(n_stores)),
        block_size=256,
    )
    return db


def explore(db: Database, name: str, query, quota: float, target: float) -> None:
    print(f"> {name}   (quota {quota:g}s, stop at ±{target:.0%})")
    result = db.estimate(
        query,
        quota=quota,
        strategy=OneAtATimeInterval(d_beta=24),
        stopping=ErrorConstrained(target_relative_halfwidth=target),
    )
    for stage in result.report.stages:
        if stage.estimate is None:
            continue
        lo, hi = stage.estimate.confidence_interval(0.95)
        print(
            f"   stage {stage.index}: ≈{stage.estimate.value:8.0f}   "
            f"95% CI [{max(lo, 0):8.0f}, {hi:8.0f}]   "
            f"(+{stage.blocks_read} blocks, {stage.duration:.1f}s)"
        )
    exact = db.count(query)
    verdict = {
        "stopping_criterion": "precision target met — stopped early",
        "exhausted": "sample covered everything — answer exact",
        "no_feasible_stage": "quota exhausted",
        "deadline": "quota exhausted",
    }.get(result.termination, result.termination)
    print(f"   {verdict}; exact answer would have been {exact}\n")


def main() -> None:
    db = build_sales_database()
    explore(
        db,
        "how many big-ticket sales (amount > 500)?",
        select(rel("sales"), cmp("amount", ">", 500)),
        quota=20.0,
        target=0.15,
    )
    explore(
        db,
        "how many sales in region 0 (join sales ⋈ stores)?",
        join(
            rel("sales"),
            select(rel("stores"), cmp("region", "==", 0)),
            on=["store_id"],
        ),
        quota=45.0,
        target=0.25,
    )


if __name__ == "__main__":
    main()
