"""Partitioned relations — parallel shard sampling, identical answers.

A partitioned relation splits its blocks across K deterministic shards;
with ``QueryOptions(partitions=W)`` each stage's drawn blocks are
materialized by W shard workers in parallel. Invariant 10 is the
contract that makes the knob safe to flip anywhere: estimates, charged
costs, and stage schedules are **bit-identical** partitions on or off —
only the ``shard_scan_started`` / ``shard_merged`` trace markers differ.
This example walks the surface end to end:

1. the same query, same seed, runs with partitioning off and with four
   shard workers — the answers and stage schedules are bit-equal;
2. the trace stream shows every shard pulling its share of each stage's
   draw, merged back in global draw order;
3. ``repro.core.switches.describe()`` reports how the partitions switch
   resolved (explicit > options > env > default) — the same registry the
   docs table is generated from;
4. the shard metadata cache is a first-class handle in ``repro.caches``,
   and a write invalidates it like every other derived layer;
5. a server priced with ``shard_parallelism=4`` admits work a serial
   pricing would consider infeasible.

Run:  python examples/partitions.py
"""

from __future__ import annotations

from repro import Database, QueryOptions, caches, cmp, rel
from repro.core.switches import describe
from repro.observability import RecordingSink
from repro.server import QueryServer
from repro.server.admission import minimum_stage_cost

PARTITIONS = 8


def build_database(seed: int = 7) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "orders",
        [("order_id", "int"), ("qty", "int")],
        rows=[(i, (i * 7919) % 200) for i in range(30_000)],
        partitions=PARTITIONS,
    )
    return db


def signature(result) -> tuple:
    report = result.report
    return (
        result.value,
        None if report.estimate is None else report.estimate.variance,
        tuple((s.fraction, s.duration, s.blocks_read) for s in report.stages),
    )


def main() -> None:
    panel = rel("orders").where(cmp("qty", "<", 10))

    # -- 1. partitions on/off never changes what the controller sees --
    off = build_database().estimate(
        panel, quota=3.0, seed=1, options=QueryOptions(partitions=False)
    )
    on = build_database().estimate(
        panel, quota=3.0, seed=1, options=QueryOptions(partitions=4)
    )
    assert signature(on) == signature(off)
    print(f"off vs 4 workers : estimate {on.value:.1f} — bit-identical runs")

    # -- 2. the trace shows every shard pulling its share -------------
    sink = RecordingSink()
    build_database().estimate(
        panel, quota=30.0, seed=1, options=QueryOptions(partitions=4, sink=sink)
    )
    starts = sink.of_kind("shard_scan_started")
    merges = sink.of_kind("shard_merged")
    shares: dict[int, int] = {}
    for event in starts:
        shares[event.shard] = shares.get(event.shard, 0) + event.blocks
    print(
        f"trace            : {len(starts)} shard scans over "
        f"{len(shares)} shards, {len(merges)} merges; "
        f"per-shard blocks {dict(sorted(shares.items()))}"
    )

    # -- 3. one registry explains how every switch resolved -----------
    state = next(
        s
        for s in describe(options=QueryOptions(partitions=4))
        if s.name == "partitions"
    )
    print(
        f"switches         : partitions -> {state.value} "
        f"(source: {state.source})"
    )

    # -- 4. the shard metadata cache is a handle like any other -------
    db = build_database()
    before = caches.get("shards").info()
    db.append_rows("orders", [(10**6, 5)])
    after = caches.get("shards").info()
    print(
        f"append_rows      : shard cache {before.currsize} entries -> "
        f"{after.currsize} ({after.invalidations} invalidated); "
        f"registry handles {list(caches.names())}"
    )

    # -- 5. admission pricing can credit the parallel overlap ---------
    session = db.open_session(panel, quota=3.0, seed=2)
    serial = minimum_stage_cost(session)
    overlapped = minimum_stage_cost(session, shard_parallelism=4.0)
    QueryServer(db, shard_parallelism=4.0)  # the server-level knob
    print(
        f"admission        : min stage cost {serial:.4f}s serial -> "
        f"{overlapped:.4f}s priced with 4-way shard overlap"
    )


if __name__ == "__main__":
    main()
